// Cross-query sharing experiment: K overlapping standing queries on one
// stream (docs/SHARING.md). Every cell registers K alpha-variant spellings
// of two base queries — all structurally identical under the canonicalizing
// rewrite — so the runtime folds them into two shared sub-chain units and
// steps each once per tick regardless of K. Per-tick cost should therefore
// grow sublinearly in K (the residual linear term is per-session commit
// bookkeeping, not chain math), with shared_steps_saved accounting for the
// avoided work.
//
// Each cell also re-runs with sharing disabled (`unshared` mode) and
// cross-checks every published probability bitwise — the bench doubles as
// an equivalence harness and exits 1 on any mismatch. One `JSON {...}`
// line per (K, mode) cell; the summary line carries the two numbers the
// perf gate floors with --min-metric:
//   sharing_ratio_64    ticks/sec@K=64 / ticks/sec@K=1, shared mode.
//                       Linear-in-K cost would put this at ~1/64; sharing
//                       keeps it an order of magnitude higher.
//   sharing_speedup_256 ticks/sec shared / unshared at K=256 (full grid
//                       only) — same machine, same process, adjacent
//                       cells, so it certifies "sharing pays" without any
//                       cross-machine calibration.
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/executor.h"
#include "runtime/replay.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

constexpr size_t kTags = 4;

// K alpha-variant spellings over tag1's stream: two base shapes (one- and
// two-subgoal), each spelled with fresh variable names so no two texts are
// equal — the sharing must come from the canonical rewrite, not from the
// exact-text prepared-plan cache.
std::vector<std::string> MakeQueries(size_t count) {
  std::vector<std::string> out;
  for (size_t i = 0; out.size() < count; ++i) {
    const std::string v = "v" + std::to_string(i);
    const std::string w = "w" + std::to_string(i);
    if (i % 2 == 0) {
      out.push_back("At('tag1', " + v + " : Room(" + v + "))");
    } else {
      out.push_back("At('tag1', " + v + " : Hallway(" + v +
                    ")); At('tag1', " + w + " : Room(" + w + "))");
    }
  }
  return out;
}

struct CellResult {
  double ticks_per_sec = 0;
  std::vector<double> probs;  // [tick * K + query], registration order
  RuntimeStats stats;
};

constexpr size_t kReps = 3;

// Runs one (K, mode) cell `kReps` times (fresh runtime each rep, best time
// kept — the smallest cells finish in fractions of a millisecond, where a
// single sample is scheduler noise); collects every published probability
// for the bitwise shared-vs-unshared cross-check.
bool RunCell(const EventDatabase& archive,
             const std::vector<TickBatch>& batches,
             const std::vector<std::string>& queries, bool sharing,
             Timestamp horizon, CellResult* out, bool emit_json = true) {
  double best_ms = 0;
  for (size_t rep = 0; rep < kReps; ++rep) {
    auto live = CloneDeclarations(archive);
    if (!live.ok()) {
      std::fprintf(stderr, "%s\n", live.status().ToString().c_str());
      return false;
    }
    RuntimeOptions options;
    options.num_threads = 2;
    options.queue_capacity = batches.size();  // preload everything
    options.sharing.enabled = sharing;
    StreamRuntime runtime(live->get(), options);
    for (const std::string& q : queries) {
      auto id = runtime.Register(q);
      if (!id.ok()) {
        std::fprintf(stderr, "%s: %s\n", q.c_str(),
                     id.status().ToString().c_str());
        return false;
      }
    }
    out->probs.clear();
    out->probs.reserve(horizon * queries.size());
    runtime.SetTickCallback([&](const TickResult& r) {
      for (const auto& [id, p] : r.probs) {
        (void)id;
        out->probs.push_back(p);
      }
    });
    for (const TickBatch& b : batches) {
      if (!runtime.ingest().TryPush(b)) {
        std::fprintf(stderr, "preload overflowed the queue\n");
        return false;
      }
    }
    double ms = TimeMs([&] {
      runtime.Start();
      runtime.WaitForTick(horizon, std::chrono::milliseconds(600000));
    });
    runtime.Stop();
    out->stats = runtime.Stats();
    if (out->stats.ticks_processed != horizon ||
        out->probs.size() != horizon * queries.size()) {
      std::fprintf(stderr, "incomplete run: %s\n",
                   out->stats.ToString().c_str());
      return false;
    }
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  out->ticks_per_sec = Throughput(horizon, best_ms);
  const double ms = best_ms;
  if (!emit_json) return true;
  JsonLine()
      .Add("bench", std::string("t09_query_sharing"))
      .Add("queries", queries.size())
      .Add("mode", std::string(sharing ? "shared" : "unshared"))
      .Add("ticks", static_cast<size_t>(horizon))
      .Add("reps", kReps)
      .Add("time_ms", ms)
      .Add("ticks_per_sec", out->ticks_per_sec)
      .Add("tick_p99_us", out->stats.tick_latency.p99_us)
      .Add("sharing_groups", out->stats.sharing_groups)
      .Add("shared_steps_saved",
           static_cast<size_t>(out->stats.shared_steps_saved))
      .Print();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const Timestamp horizon = smoke ? 60 : 200;
  std::printf("Query sharing | K alpha-variant queries, one stream, "
              "horizon %u%s\n",
              horizon, smoke ? " (smoke)" : "");
  auto scenario = RandomWalkScenario(kTags, horizon, /*seed=*/43);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  auto archive = scenario->BuildDatabase(StreamKind::kFiltered);
  if (!archive.ok()) {
    std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
    return 1;
  }
  auto batches = ExtractBatches(**archive);
  if (!batches.ok()) {
    std::fprintf(stderr, "%s\n", batches.status().ToString().c_str());
    return 1;
  }

  // Warm-up cell (discarded): the first runtime in the process pays
  // one-time costs (thread spin-up, allocator growth) that would otherwise
  // land entirely on the K=1 cell and skew sharing_ratio_64.
  {
    CellResult warm;
    if (!RunCell(**archive, *batches, MakeQueries(4), /*sharing=*/true,
                 horizon, &warm, /*emit_json=*/false)) {
      return 1;
    }
  }

  const std::vector<size_t> query_counts =
      smoke ? std::vector<size_t>{1, 16, 64}
            : std::vector<size_t>{1, 4, 16, 64, 256};
  std::printf("%-10s %14s %14s %10s %16s\n", "queries", "shared t/s",
              "unshared t/s", "groups", "steps_saved");
  double tps_at_1 = 0, tps_at_64 = 0;
  double speedup_256 = 0;
  for (size_t k : query_counts) {
    const std::vector<std::string> queries = MakeQueries(k);
    CellResult shared, unshared;
    if (!RunCell(**archive, *batches, queries, /*sharing=*/true, horizon,
                 &shared) ||
        !RunCell(**archive, *batches, queries, /*sharing=*/false, horizon,
                 &unshared)) {
      return 1;
    }
    // Bitwise equivalence: sharing is an optimization, never a semantics
    // change. Any drift is a bug, and the bench fails loudly.
    for (size_t i = 0; i < shared.probs.size(); ++i) {
      if (shared.probs[i] != unshared.probs[i]) {
        std::fprintf(stderr,
                     "MISMATCH at K=%zu, flat index %zu: shared=%.17g "
                     "unshared=%.17g\n",
                     k, i, shared.probs[i], unshared.probs[i]);
        return 1;
      }
    }
    // K >= 2 folds both base shapes into one unit each (3 chains total:
    // the two-subgoal query runs 2); K == 1 has nothing to share.
    if (k >= 2 && shared.stats.sharing_groups == 0) {
      std::fprintf(stderr, "K=%zu formed no sharing groups\n", k);
      return 1;
    }
    if (k == 1) tps_at_1 = shared.ticks_per_sec;
    if (k == 64) tps_at_64 = shared.ticks_per_sec;
    if (k == 256 && unshared.ticks_per_sec > 0) {
      speedup_256 = shared.ticks_per_sec / unshared.ticks_per_sec;
    }
    std::printf("%-10zu %14.1f %14.1f %10zu %16llu\n", k,
                shared.ticks_per_sec, unshared.ticks_per_sec,
                shared.stats.sharing_groups,
                static_cast<unsigned long long>(
                    shared.stats.shared_steps_saved));
  }
  // Derived metric on its own record (keyed by bench only): the perf gate
  // floors it with --min-metric sharing_ratio_64:... — a collapse to
  // linear-in-K cost (ratio ~1/64) trips the gate.
  const double ratio = tps_at_1 > 0 ? tps_at_64 / tps_at_1 : 0.0;
  JsonLine line;
  line.Add("bench", std::string("t09_query_sharing_summary"))
      .Add("sharing_ratio_64", ratio);
  if (speedup_256 > 0) line.Add("sharing_speedup_256", speedup_256);
  line.Print();
  std::printf("\nsharing_ratio_64 = %.3f (ticks/sec at K=64 relative to "
              "K=1, shared mode)\n",
              ratio);
  if (speedup_256 > 0) {
    std::printf("sharing_speedup_256 = %.2fx (shared vs unshared ticks/sec "
                "at K=256)\n",
                speedup_256);
  }
  return 0;
}
