// Shared helpers for the benchmark harness: canonical queries, scenario
// construction, wall-clock timing, and table printing. Every bench binary
// regenerates one table or figure of the paper's Section 4; absolute
// numbers differ from the 2008 testbed, but the comparisons' shapes are the
// deliverable (see EXPERIMENTS.md).
#ifndef LAHAR_BENCH_BENCH_UTIL_H_
#define LAHAR_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "engine/deterministic_engine.h"
#include "engine/lahar.h"
#include "metrics/quality.h"
#include "sim/scenarios.h"

namespace lahar {
namespace bench {

/// The paper's central quality query (Section 4.2): two consecutive
/// timesteps outside any room, then inside the coffee room.
inline const char* kCoffeeQuery =
    "(At(p, l1); At(p, l2); At(p, l3)) "
    "WHERE NotRoom(l1) AND NotRoom(l2) AND CoffeeRoom(l3)";

/// Q1 of Section 4.3: a Regular selection.
inline const char* kQ1Selection = "At(p, l : CoffeeRoom(l))";

/// Q2 of Section 4.3: an Extended Regular sequence.
inline const char* kQ2Sequence =
    "At(p, l1 : NotRoom(l1)); At(p, l2 : CoffeeRoom(l2))";

/// The Fig. 14 Safe query (distinct-keys reading of q vs p).
inline const char* kSafeQuery = "At(p, l1); At(p, l2); At(q, l3)";

/// Per-timestep satisfaction of a deterministic baseline.
inline std::vector<Timestamp> BaselineEvents(EventDatabase* db,
                                             const std::string& query,
                                             Determinization mode) {
  Lahar lahar(db);
  auto prepared = lahar.Prepare(query);
  if (!prepared.ok()) return {};
  auto engine = DeterministicEngine::Create(prepared->ast, *db, mode);
  if (!engine.ok()) return {};
  auto sat = engine->Run();
  if (!sat.ok()) return {};
  return DetectionEvents(*sat);
}

/// The pipeline configuration used by the quality experiments; calibrated
/// so the simulated deployment exhibits the paper's regimes (read rates in
/// the noisy 60% band, sticky rooms, a learned coffee-destination prior).
inline PipelineConfig QualityConfig() {
  PipelineConfig config;
  config.read_rate = 0.6;
  config.bleed_rate = 0.06;
  config.hall_stay = 0.3;
  config.room_stay = 0.8;
  config.coffee_bias = 3.0;
  config.num_particles = 100;
  return config;
}

/// The coffee query grounded to one tag (the paper runs one query process
/// per person; quality is pooled over the per-tag scores).
inline std::string TagCoffeeQuery(const std::string& tag) {
  return "(At('" + tag + "', l1); At('" + tag + "', l2); At('" + tag +
         "', l3)) WHERE NotRoom(l1) AND NotRoom(l2) AND CoffeeRoom(l3)";
}

/// Pools true/false positive counts across tags into one score.
class PooledScore {
 public:
  void Add(const QualityScore& s) {
    tp_ += s.true_positives;
    fp_ += s.false_positives;
    fn_ += s.false_negatives;
  }
  QualityScore Finish() const {
    QualityScore s;
    s.true_positives = tp_;
    s.false_positives = fp_;
    s.false_negatives = fn_;
    s.precision = tp_ + fp_ ? static_cast<double>(tp_) / (tp_ + fp_) : 1.0;
    s.recall = tp_ + fn_ ? static_cast<double>(tp_) / (tp_ + fn_) : 1.0;
    s.f1 = s.precision + s.recall > 0
               ? 2 * s.precision * s.recall / (s.precision + s.recall)
               : 0.0;
    return s;
  }

 private:
  size_t tp_ = 0, fp_ = 0, fn_ = 0;
};

/// Per-tag quality inputs for the coffee query on one database kind.
struct TagQualityData {
  std::vector<std::vector<Timestamp>> truths;     // per tag
  std::vector<std::vector<double>> probs;         // per tag (Lahar)
  std::vector<std::vector<Timestamp>> baseline;   // per tag (MLE/Viterbi)
  size_t total_truth = 0;

  QualityScore LaharAt(double rho, Timestamp tolerance) const {
    PooledScore pooled;
    for (size_t i = 0; i < truths.size(); ++i) {
      pooled.Add(Score(probs[i], rho, truths[i], tolerance));
    }
    return pooled.Finish();
  }
  QualityScore BaselineScore(Timestamp tolerance) const {
    PooledScore pooled;
    for (size_t i = 0; i < truths.size(); ++i) {
      pooled.Add(ScoreEvents(baseline[i], truths[i], tolerance));
    }
    return pooled.Finish();
  }
};

/// Runs the per-tag coffee query over `kind` streams and the given
/// deterministic baseline.
inline TagQualityData CollectTagQuality(const Scenario& scenario,
                                        StreamKind kind,
                                        Determinization baseline_mode) {
  TagQualityData data;
  auto truth_db = scenario.BuildDatabase(StreamKind::kTruth);
  auto db = scenario.BuildDatabase(kind);
  if (!truth_db.ok() || !db.ok()) {
    std::fprintf(stderr, "database construction failed\n");
    return data;
  }
  for (const TagTrace& tag : scenario.tags) {
    std::string query = TagCoffeeQuery(tag.name);
    Lahar truth_lahar(truth_db->get());
    auto truth_answer = truth_lahar.Run(query);
    if (!truth_answer.ok()) continue;
    data.truths.push_back(DetectionEvents(truth_answer->probs, 0.5));
    data.total_truth += data.truths.back().size();
    Lahar lahar(db->get());
    auto answer = lahar.Run(query);
    data.probs.push_back(answer.ok() ? answer->probs : std::vector<double>{});
    data.baseline.push_back(BaselineEvents(db->get(), query, baseline_mode));
  }
  return data;
}

/// \brief Builder for one flat JSON object, emitted as a single line.
///
/// The bench binaries print human-readable tables for eyeballing plus one
/// JSON line per measurement (prefixed so plotting scripts can grep them
/// out of the mixed stdout stream).
class JsonLine {
 public:
  JsonLine& Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return Raw(key, buf);
  }
  JsonLine& Add(const std::string& key, size_t value) {
    return Raw(key, std::to_string(value));
  }
  JsonLine& Add(const std::string& key, const std::string& value) {
    return Raw(key, "\"" + value + "\"");  // keys/values here need no escaping
  }
  std::string str() const { return "{" + body_ + "}"; }
  void Print() const { std::printf("JSON %s\n", str().c_str()); }

 private:
  JsonLine& Raw(const std::string& key, const std::string& value) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + key + "\":" + value;
    return *this;
  }
  std::string body_;
};

/// Milliseconds spent running `fn`.
inline double TimeMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// tuples-per-second given a tuple count and elapsed milliseconds.
inline double Throughput(size_t tuples, double ms) {
  return ms > 0 ? 1000.0 * static_cast<double>(tuples) / ms : 0.0;
}

/// Ground-truth event times of `query` — evaluated exactly on the
/// scenario's certain truth streams.
inline std::vector<Timestamp> GroundTruth(const Scenario& scenario,
                                          const std::string& query) {
  auto truth_db = scenario.BuildDatabase(StreamKind::kTruth);
  if (!truth_db.ok()) {
    std::fprintf(stderr, "truth db: %s\n",
                 truth_db.status().ToString().c_str());
    return {};
  }
  Lahar lahar(truth_db->get());
  auto answer = lahar.Run(query);
  if (!answer.ok()) {
    std::fprintf(stderr, "truth query: %s\n",
                 answer.status().ToString().c_str());
    return {};
  }
  return DetectionEvents(answer->probs, 0.5);
}

/// Prints a quality sweep header / row in the Fig. 9 / Fig. 10 layout.
inline void PrintQualityHeader(const char* title,
                               const std::vector<std::string>& systems) {
  std::printf("\n%s\n", title);
  std::printf("%-6s", "rho");
  for (const auto& s : systems) {
    std::printf(" | %-8s %-8s %-8s", (s + ".P").c_str(), (s + ".R").c_str(),
                (s + ".F1").c_str());
  }
  std::printf("\n");
}

inline void PrintQualityRow(double rho,
                            const std::vector<QualityScore>& scores) {
  std::printf("%-6.2f", rho);
  for (const auto& s : scores) {
    std::printf(" | %-8.3f %-8.3f %-8.3f", s.precision, s.recall, s.f1);
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace lahar

#endif  // LAHAR_BENCH_BENCH_UTIL_H_
