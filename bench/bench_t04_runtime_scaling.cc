// Runtime scaling experiment: standing queries x worker threads throughput
// grid for the concurrent streaming runtime (src/runtime/). The paper runs
// one query process per person (Section 4.3); the runtime instead advances
// every registered query inside one tick loop, fanning whole sessions out
// to persistently-assigned workers in batched tick windows
// (docs/RUNTIME.md). Theorems 3.3/3.7 make the chains independent, so
// ticks/sec should scale with threads until sessions run out or the
// end-of-window barrier dominates.
//
// Per cell we preload the whole replay into the ingest queue, then time
// Start..WaitForTick(horizon): pure tick throughput, no producer in the
// way. One `JSON {...}` line per cell (grep ^JSON for plotting), plus one
// summary line per query count carrying scaling_efficiency_8t =
// ticks/sec@8threads / ticks/sec@1thread (the number the perf gate
// watches; see bench/compare.py --min-metric).
//
// Note: measured speedup is bounded by the machine — on a single-core host
// every thread count collapses onto one CPU and the grid only shows the
// coordination overhead. --smoke shrinks the grid for CI.
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/executor.h"
#include "runtime/replay.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

constexpr size_t kTags = 8;

// Cycles grounded Regular and ungrounded Extended Regular templates until
// `count` queries exist. Mirrors tests/runtime_stress_test.cc's mix.
std::vector<std::string> MakeQueries(const Scenario& scenario, size_t count) {
  std::vector<std::string> out;
  const std::vector<std::string> ungrounded = {
      "At(x, l : Room(l))",
      "At(x, l1 : NotRoom(l1)); At(x, l2 : Room(l2))",
  };
  size_t i = 0;
  while (out.size() < count) {
    const std::string& tag = scenario.tags[i % scenario.tags.size()].name;
    switch (i % 4) {
      case 0:
        out.push_back("At('" + tag + "', l : Room(l))");
        break;
      case 1:
        out.push_back("At('" + tag + "', l1 : NotRoom(l1)); At('" + tag +
                      "', l2 : Room(l2))");
        break;
      case 2:
        out.push_back("At('" + tag + "', l1 : Hallway(l1)); At('" + tag +
                      "', l2 : Hallway(l2)); At('" + tag +
                      "', l3 : Room(l3))");
        break;
      default:
        out.push_back(ungrounded[i % ungrounded.size()]);
        break;
    }
    ++i;
  }
  return out;
}

// Runs one (queries, threads) cell; returns ticks/sec.
double RunCell(const EventDatabase& archive,
               const std::vector<TickBatch>& batches,
               const std::vector<std::string>& queries, size_t threads,
               Timestamp horizon) {
  auto live = CloneDeclarations(archive);
  if (!live.ok()) {
    std::fprintf(stderr, "%s\n", live.status().ToString().c_str());
    return 0;
  }
  RuntimeOptions options;
  options.num_threads = threads;
  options.queue_capacity = batches.size();  // preload everything
  StreamRuntime runtime(live->get(), options);
  for (const std::string& q : queries) {
    auto id = runtime.Register(q);
    if (!id.ok()) {
      std::fprintf(stderr, "%s: %s\n", q.c_str(),
                   id.status().ToString().c_str());
      return 0;
    }
  }
  for (const TickBatch& b : batches) {
    if (!runtime.ingest().TryPush(b)) {
      std::fprintf(stderr, "preload overflowed the queue\n");
      return 0;
    }
  }
  double ms = TimeMs([&] {
    runtime.Start();
    runtime.WaitForTick(horizon, std::chrono::milliseconds(600000));
  });
  runtime.Stop();
  RuntimeStats stats = runtime.Stats();
  if (stats.ticks_processed != horizon || stats.batches_rejected != 0) {
    std::fprintf(stderr, "incomplete run: %s\n", stats.ToString().c_str());
    return 0;
  }
  double ticks_per_sec = Throughput(horizon, ms);
  JsonLine()
      .Add("bench", std::string("t04_runtime_scaling"))
      .Add("queries", queries.size())
      .Add("threads", threads)
      .Add("chains", stats.total_chains)
      .Add("ticks", static_cast<size_t>(horizon))
      .Add("time_ms", ms)
      .Add("ticks_per_sec", ticks_per_sec)
      .Add("tick_p99_us", stats.tick_latency.p99_us)
      .Add("windows", static_cast<size_t>(stats.windows_executed))
      .Add("barrier_p99_us", stats.barrier_wait.p99_us)
      .Print();
  return ticks_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const Timestamp horizon = smoke ? 60 : 200;
  std::printf("Runtime scaling | ticks/sec, %zu tags, horizon %u%s\n", kTags,
              horizon, smoke ? " (smoke)" : "");
  auto scenario = RandomWalkScenario(kTags, horizon, /*seed=*/41);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  auto archive = scenario->BuildDatabase(StreamKind::kFiltered);
  if (!archive.ok()) {
    std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
    return 1;
  }
  auto batches = ExtractBatches(**archive);
  if (!batches.ok()) {
    std::fprintf(stderr, "%s\n", batches.status().ToString().c_str());
    return 1;
  }

  const std::vector<size_t> query_counts =
      smoke ? std::vector<size_t>{8} : std::vector<size_t>{8, 32, 128};
  const std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{1, 8} : std::vector<size_t>{1, 2, 4, 8};
  std::printf("%-10s", "queries");
  for (size_t t : thread_counts) std::printf(" %8zu thr", t);
  std::printf("   efficiency@8\n");
  for (size_t q : query_counts) {
    std::vector<std::string> queries = MakeQueries(*scenario, q);
    // Measure the whole row first: RunCell emits its JSON line per cell,
    // and interleaving those with a half-printed table row would mangle
    // both.
    std::vector<double> row;
    for (size_t t : thread_counts) {
      row.push_back(RunCell(**archive, *batches, queries, t, horizon));
    }
    std::printf("%-10zu", q);
    double base = 0, at8 = 0;
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      if (thread_counts[i] == 1) base = row[i];
      if (thread_counts[i] == 8) at8 = row[i];
      std::printf(" %12.1f", row[i]);
    }
    const double efficiency = base > 0 ? at8 / base : 0.0;
    std::printf("   %8.2fx\n", efficiency);
    // Derived metric on its own record: keyed by (bench, queries) only, so
    // the regression pass (which tracks ticks_per_sec per cell) ignores it
    // and --min-metric gates can target it directly.
    JsonLine()
        .Add("bench", std::string("t04_runtime_scaling_summary"))
        .Add("queries", q)
        .Add("scaling_efficiency_8t", efficiency)
        .Print();
  }
  std::printf("\n(chains are independent per Thm 3.3/3.7; speedup requires"
              " as many physical cores)\n");
  return 0;
}
