// Figure 11: room occupancy. (a) The acceptance probability over time of
// "in room4 for 3 consecutive seconds" under Markovian correlations versus
// independent marginals versus the Viterbi path; (b) how the MLE estimate
// hops between rooms while the MAP path arbitrarily commits to one.
//
// Paper shape: the Markovian approach accrues probability during the visit
// (self-transition ~0.6 beats the ~0.15 uniform marginal), the independent
// product stays near marginal^3, and Viterbi typically selects the wrong
// room and scores 0 throughout.
#include "bench_util.h"
#include "inference/viterbi.h"

using namespace lahar;
using namespace lahar::bench;

int main() {
  const Timestamp kHorizon = 40;
  PipelineConfig config;
  config.read_rate = 0.8;
  config.room_stay = 0.6;
  config.num_particles = 60;  // modest particle count: visible churn
  auto scenario = RoomOccupancyScenario(kHorizon, /*seed=*/11, config);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  // The outer WHERE gives blocking (consecutive-timestep) semantics: any
  // location event that is not room4 kills the partial match, so this asks
  // for three *consecutive* steps in the room.
  const std::string query =
      "(At('tag1', l1); At('tag1', l2); At('tag1', l3)) "
      "WHERE l1 = 'room4' AND l2 = 'room4' AND l3 = 'room4'";

  auto markov_db = scenario->BuildDatabase(StreamKind::kSmoothed);
  auto indep_db = scenario->BuildDatabase(StreamKind::kSmoothedIndependent);
  if (!markov_db.ok() || !indep_db.ok()) return 1;
  Lahar markov_lahar(markov_db->get());
  Lahar indep_lahar(indep_db->get());
  auto markov = markov_lahar.Run(query);
  auto indep = indep_lahar.Run(query);
  if (!markov.ok() || !indep.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  // Viterbi path satisfaction (0/1 per step).
  Lahar viterbi_lahar(markov_db->get());
  auto prepared = viterbi_lahar.Prepare(query);
  if (!prepared.ok()) return 1;
  auto viterbi_engine = DeterministicEngine::Create(
      prepared->ast, **markov_db, Determinization::kViterbi);
  if (!viterbi_engine.ok()) return 1;
  auto viterbi_sat = viterbi_engine->Run();
  if (!viterbi_sat.ok()) return 1;

  std::printf("Fig 11(a) | P[in room4 for 3 consecutive steps] over time\n");
  std::printf("%-5s %-8s %-10s %-12s %-8s\n", "t", "truth", "Markov",
              "Independent", "Viterbi");
  double markov_peak = 0, indep_peak = 0, viterbi_any = 0;
  for (Timestamp t = 1; t <= kHorizon; ++t) {
    bool truly_inside =
        scenario->floorplan->location(scenario->tags[0].true_path[t]).name ==
        "room4";
    std::printf("%-5u %-8s %-10.4f %-12.4f %-8d\n", t,
                truly_inside ? "room4" : "hall", markov->probs[t],
                indep->probs[t], (*viterbi_sat)[t] ? 1 : 0);
    markov_peak = std::max(markov_peak, markov->probs[t]);
    indep_peak = std::max(indep_peak, indep->probs[t]);
    viterbi_any += (*viterbi_sat)[t] ? 1 : 0;
  }
  std::printf("\npeak probability: Markov %.4f vs Independent %.4f "
              "(ratio %.1fx); Viterbi accepted at %d timesteps\n",
              markov_peak, indep_peak,
              indep_peak > 0 ? markov_peak / indep_peak : 0.0,
              static_cast<int>(viterbi_any));

  // Fig 11(b): path stability of MLE vs MAP on the filtered stream.
  auto filtered_db = scenario->BuildDatabase(StreamKind::kFiltered);
  if (!filtered_db.ok()) return 1;
  const Stream& fstream = (*filtered_db)->stream(0);
  const Stream& mstream = (*markov_db)->stream(0);
  auto hops = [](const std::vector<DomainIndex>& path) {
    int h = 0;
    for (size_t t = 2; t < path.size(); ++t) h += path[t] != path[t - 1];
    return h;
  };
  int mle_hops = hops(MlePath(fstream));
  int map_hops = hops(ViterbiPath(mstream));
  int true_hops = 0;
  for (Timestamp t = 2; t <= kHorizon; ++t) {
    true_hops +=
        scenario->tags[0].true_path[t] != scenario->tags[0].true_path[t - 1];
  }
  std::printf("\nFig 11(b) | location changes along the trace: MLE %d, "
              "MAP %d, truth %d\n",
              mle_hops, map_hops, true_hops);
  std::printf("(paper: resampling makes MLE hop between rooms; MAP commits "
              "to a single room)\n");
  return 0;
}
