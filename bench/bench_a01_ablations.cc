// Ablations (google-benchmark): the design choices DESIGN.md calls out.
//
//  * NFA transition memoization on/off — the lazy subset construction cache
//    behind the Markov-chain evaluation.
//  * Safe-plan seq truncation on/off — the lazy/truncated evaluation behind
//    Fig. 14(b).
//  * Regular-chain step cost vs hidden-domain size — the D^2 term of the
//    Markovian update.
//  * Sampling cost vs sample count — the 1/eps^2 law.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_util.h"
#include "engine/extended_engine.h"
#include "engine/safe_engine.h"
#include "engine/sampling_engine.h"

namespace lahar {
namespace {

using bench::kQ2Sequence;
using bench::kSafeQuery;

// Shared scenario/db cache so each benchmark iteration measures evaluation,
// not simulation.
const EventDatabase& FilteredDb(size_t tags, Timestamp horizon) {
  static std::map<std::pair<size_t, Timestamp>,
                  std::unique_ptr<EventDatabase>>
      cache;
  auto key = std::make_pair(tags, horizon);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto scenario = RandomWalkScenario(tags, horizon, /*seed=*/31);
    auto db = scenario->BuildDatabase(StreamKind::kFiltered);
    it = cache.emplace(key, std::move(*db)).first;
  }
  return *it->second;
}

PreparedQuery Prepare(const EventDatabase& db, const char* query) {
  Lahar lahar(const_cast<EventDatabase*>(&db));
  auto prepared = lahar.Prepare(query);
  return *prepared;
}

void BM_NfaTransition(benchmark::State& state) {
  const bool memo = state.range(0) != 0;
  const EventDatabase& db = FilteredDb(1, 60);
  PreparedQuery prepared = Prepare(db, kQ2Sequence);
  auto nfa = QueryNfa::Build(prepared.normalized);
  nfa->set_memoization(memo);
  Rng rng(5);
  std::vector<SymbolMask> inputs(1024);
  for (auto& i : inputs) i = rng.Next() & 0xF;
  size_t j = 0;
  StateMask s = nfa->InitialStates();
  for (auto _ : state) {
    s = nfa->Transition(s | nfa->InitialStates(), inputs[j++ & 1023]);
    benchmark::DoNotOptimize(s);
  }
  state.SetLabel(memo ? "memoized" : "no-memo");
}
BENCHMARK(BM_NfaTransition)->Arg(1)->Arg(0);

void BM_RegularChainStepVsDomain(benchmark::State& state) {
  const size_t domain = static_cast<size_t>(state.range(0));
  // A Markov stream with `domain` states.
  EventDatabase db;
  EventSchema schema;
  schema.type = db.interner().Intern("At");
  schema.attr_names = {db.interner().Intern("tag"),
                       db.interner().Intern("loc")};
  schema.num_key_attrs = 1;
  (void)db.DeclareSchema(schema);
  const size_t D = domain + 1;  // locations + bottom
  std::vector<double> init(D, 0.0);
  for (size_t d = 1; d < D; ++d) init[d] = 1.0 / domain;
  Matrix cpt(D, D, 0.0);
  cpt.At(0, 0) = 1.0;
  for (size_t i = 1; i < D; ++i) {
    for (size_t j = 1; j < D; ++j) {
      cpt.At(i, j) = i == j ? 0.6 : 0.4 / (domain - 1);
    }
  }
  Stream s2(schema.type, {db.Sym("tag1")}, 1, 64, true);
  for (size_t d = 0; d < domain; ++d) {
    s2.InternTuple({db.Sym("loc" + std::to_string(d))});
  }
  (void)s2.SetInitial(init);
  for (Timestamp t = 1; t < 64; ++t) (void)s2.SetCpt(t, cpt);
  (void)s2.FinalizeMarkov();
  (void)db.AddStream(std::move(s2));
  PreparedQuery prepared =
      Prepare(db, "At('tag1', l1 : l1 = 'loc0'); At('tag1', l2 : l2 = 'loc1')");
  auto base = RegularChain::Create(prepared.normalized, db);
  for (auto _ : state) {
    RegularChain chain = *base;
    for (int i = 0; i < 63; ++i) chain.Step();
    benchmark::DoNotOptimize(chain.AcceptProb());
  }
  state.SetItemsProcessed(state.iterations() * 63);
}
BENCHMARK(BM_RegularChainStepVsDomain)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_SafePlanTruncation(benchmark::State& state) {
  const bool lazy = state.range(0) != 0;
  const EventDatabase& db = FilteredDb(3, 1500);
  PreparedQuery prepared = Prepare(db, kSafeQuery);
  for (auto _ : state) {
    PlanOptions options;
    options.assume_distinct_keys = true;
    options.seq_truncate = lazy ? 1e-12 : 0.0;
    auto engine = SafePlanEngine::Create(prepared.normalized, db, options);
    auto probs = engine->Run();
    benchmark::DoNotOptimize(probs);
  }
  state.SetLabel(lazy ? "truncated/lazy" : "eager");
}
BENCHMARK(BM_SafePlanTruncation)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_SamplingVsSampleCount(benchmark::State& state) {
  const size_t samples = static_cast<size_t>(state.range(0));
  const EventDatabase& db = FilteredDb(5, 60);
  PreparedQuery prepared = Prepare(db, kQ2Sequence);
  for (auto _ : state) {
    SamplingOptions options;
    options.num_samples = samples;
    auto engine = SamplingEngine::Create(
        prepared.ast, db, options);
    auto probs = engine->Run();
    benchmark::DoNotOptimize(probs);
  }
  state.SetItemsProcessed(state.iterations() * samples);
}
BENCHMARK(BM_SamplingVsSampleCount)
    ->Arg(150)
    ->Arg(600)
    ->Arg(2400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lahar

BENCHMARK_MAIN();
