// Mixed-class serving experiment: a realistic standing-query population —
// 70% grounded Regular selections, 20% Extended Regular sequences, 10%
// Safe plans — multiplexed through the QuerySession layer
// (engine/session.h) at 1..8 worker threads. Regular/Extended sessions
// shard per-key chains; a Safe session shards its independent grounding
// groups (project children) the same way, so no class serializes the tick
// (docs/RUNTIME.md).
//
// Per cell we preload the whole replay into the ingest queue, then time
// Start..WaitForTick(horizon): pure tick throughput, no producer in the
// way. One `JSON {...}` line per cell (grep ^JSON for the compare.py gate).
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/executor.h"
#include "runtime/replay.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

constexpr size_t kTags = 8;
constexpr Timestamp kHorizon = 200;
constexpr size_t kQueries = 20;  // 14 regular / 4 extended / 2 safe

// 70/20/10 regular/extended/safe population over the simulated building.
std::vector<std::string> MakeMixedQueries(const Scenario& scenario) {
  std::vector<std::string> out;
  const size_t num_safe = kQueries / 10;                   // 10%
  const size_t num_extended = kQueries / 5;                // 20%
  const size_t num_regular = kQueries - num_safe - num_extended;
  for (size_t i = 0; i < num_regular; ++i) {
    const std::string& tag = scenario.tags[i % scenario.tags.size()].name;
    out.push_back(i % 2 == 0
                      ? "At('" + tag + "', l : Room(l))"
                      : "At('" + tag + "', l : Hallway(l))");
  }
  const std::vector<std::string> extended = {
      "At(x, l : Room(l))",
      "At(x, l1 : NotRoom(l1)); At(x, l2 : Room(l2))",
      "At(x, l : Hallway(l))",
      "At(x, l1 : Hallway(l1)); At(x, l2 : Room(l2))",
  };
  for (size_t i = 0; i < num_extended; ++i) {
    out.push_back(extended[i % extended.size()]);
  }
  for (size_t i = 0; i < num_safe; ++i) {
    out.push_back(kSafeQuery);  // Fig. 14's Safe plan (distinct keys)
  }
  return out;
}

// Runs one thread-count cell; returns ticks/sec.
double RunCell(const EventDatabase& archive,
               const std::vector<TickBatch>& batches,
               const std::vector<std::string>& queries, size_t threads) {
  auto live = CloneDeclarations(archive);
  if (!live.ok()) {
    std::fprintf(stderr, "%s\n", live.status().ToString().c_str());
    return 0;
  }
  RuntimeOptions options;
  options.num_threads = threads;
  options.queue_capacity = batches.size();  // preload everything
  options.session.plan.assume_distinct_keys = true;  // compile kSafeQuery
  StreamRuntime runtime(live->get(), options);
  for (const std::string& q : queries) {
    auto id = runtime.Register(q);
    if (!id.ok()) {
      std::fprintf(stderr, "%s: %s\n", q.c_str(),
                   id.status().ToString().c_str());
      return 0;
    }
  }
  for (const TickBatch& b : batches) {
    if (!runtime.ingest().TryPush(b)) {
      std::fprintf(stderr, "preload overflowed the queue\n");
      return 0;
    }
  }
  double ms = TimeMs([&] {
    runtime.Start();
    runtime.WaitForTick(kHorizon, std::chrono::milliseconds(600000));
  });
  runtime.Stop();
  RuntimeStats stats = runtime.Stats();
  if (stats.ticks_processed != kHorizon || stats.batches_rejected != 0) {
    std::fprintf(stderr, "incomplete run: %s\n", stats.ToString().c_str());
    return 0;
  }
  size_t errors = 0;
  for (const QueryStats& qs : stats.queries) errors += qs.errors;
  if (errors != 0) {
    std::fprintf(stderr, "queries errored: %s\n", stats.ToString().c_str());
    return 0;
  }
  double ticks_per_sec = Throughput(kHorizon, ms);
  JsonLine()
      .Add("bench", std::string("t06_mixed_serving"))
      .Add("mix", std::string("70/20/10"))
      .Add("queries", queries.size())
      .Add("threads", threads)
      .Add("chains", stats.total_chains)
      .Add("ticks", static_cast<size_t>(kHorizon))
      .Add("time_ms", ms)
      .Add("ticks_per_sec", ticks_per_sec)
      .Add("tick_p99_us", stats.tick_latency.p99_us)
      .Print();
  return ticks_per_sec;
}

}  // namespace

int main() {
  std::printf(
      "Mixed-class serving | ticks/sec, %zu queries (70%% regular, 20%% "
      "extended, 10%% safe), %zu tags, horizon %u\n",
      kQueries, kTags, kHorizon);
  auto scenario = RandomWalkScenario(kTags, kHorizon, /*seed=*/43);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  auto archive = scenario->BuildDatabase(StreamKind::kFiltered);
  if (!archive.ok()) {
    std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
    return 1;
  }
  auto batches = ExtractBatches(**archive);
  if (!batches.ok()) {
    std::fprintf(stderr, "%s\n", batches.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::string> queries = MakeMixedQueries(*scenario);
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  std::vector<double> row;
  for (size_t t : thread_counts) {
    row.push_back(RunCell(**archive, *batches, queries, t));
  }
  std::printf("%-10s", "threads");
  for (size_t t : thread_counts) std::printf(" %8zu thr", t);
  std::printf("\n%-10s", "ticks/s");
  double base = 0, at4 = 0, at8 = 0;
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    if (thread_counts[i] == 1) base = row[i];
    if (thread_counts[i] == 4) at4 = row[i];
    if (thread_counts[i] == 8) at8 = row[i];
    std::printf(" %12.1f", row[i]);
  }
  const double efficiency = base > 0 ? at8 / base : 0.0;
  std::printf("\nspeedup@4 %8.2fx  efficiency@8 %.2fx  (all classes shard, "
              "including safe grounding groups; see docs/RUNTIME.md)\n",
              base > 0 ? at4 / base : 0.0, efficiency);
  // Derived metric on its own record (keyed by bench+mix only), matching
  // t04's summary line: compare.py --min-metric gates read it, the
  // per-cell regression pass ignores it.
  JsonLine()
      .Add("bench", std::string("t06_mixed_serving_summary"))
      .Add("mix", std::string("70/20/10"))
      .Add("scaling_efficiency_8t", efficiency)
      .Print();
  return 0;
}
