// Network serving experiment: end-to-end TCP throughput of the serving
// front-end (src/net, docs/SERVING.md). A lahar server hosts a mixed
// standing-query population; 2 producer clients split the replay stream
// between them (exercising multi-producer reorder on the wire path) while
// 8 subscriber clients each receive every per-tick µ(q@t) push — 10
// concurrent connections, one poll loop.
//
// The measured span is first-ingest-to-last-push: protocol encode/decode,
// admission control, the ingest queue, the tick pipeline, and the fan-out
// to all subscribers. One `JSON {...}` line per cell (grep ^JSON for the
// compare.py gate; CI requires bench=t08_network_serving records).
//
// --smoke runs a short horizon and exits nonzero on any delivery gap, so
// ctest can use it as an end-to-end concurrency check.
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "runtime/executor.h"
#include "runtime/replay.h"

using namespace lahar;
using namespace lahar::bench;

namespace {

constexpr size_t kTags = 8;
constexpr size_t kProducers = 2;
constexpr size_t kSubscribers = 8;

// Small mixed population: grounded Regular selections, one Extended
// sequence, one Safe plan — every serving class crosses the wire.
std::vector<std::string> MakeQueries(const Scenario& scenario) {
  std::vector<std::string> out;
  for (size_t i = 0; i < 6; ++i) {
    const std::string& tag = scenario.tags[i % scenario.tags.size()].name;
    out.push_back(i % 2 == 0 ? "At('" + tag + "', l : Room(l))"
                             : "At('" + tag + "', l : Hallway(l))");
  }
  out.push_back("At(x, l : Room(l))");
  out.push_back(kSafeQuery);
  return out;
}

struct CellResult {
  double ticks_per_sec = 0;
  uint64_t pushes = 0;
  bool complete = false;
};

CellResult RunCell(const EventDatabase& archive,
                   const std::vector<TickBatch>& batches,
                   const std::vector<std::string>& queries,
                   Timestamp horizon) {
  CellResult result;
  auto live = CloneDeclarations(archive);
  if (!live.ok()) {
    std::fprintf(stderr, "%s\n", live.status().ToString().c_str());
    return result;
  }
  RuntimeOptions runtime_options;
  runtime_options.num_threads = 4;
  runtime_options.queue_capacity = 64;
  runtime_options.session.plan.assume_distinct_keys = true;
  StreamRuntime runtime(live->get(), runtime_options);
  net::Server server(&runtime, net::ServerOptions{});
  runtime.Start();
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server: %s\n", s.ToString().c_str());
    return result;
  }

  // Control connection registers the standing queries once.
  auto control = net::Client::Connect("127.0.0.1", server.port());
  if (!control.ok()) {
    std::fprintf(stderr, "%s\n", control.status().ToString().c_str());
    return result;
  }
  std::vector<QueryId> ids;
  for (const std::string& q : queries) {
    auto reg = (*control)->RegisterQuery(q);
    if (!reg.ok()) {
      std::fprintf(stderr, "%s: %s\n", q.c_str(),
                   reg.status().ToString().c_str());
      return result;
    }
    ids.push_back(reg->id);
  }

  // Subscribers connect and subscribe before any data flows, so every one
  // of them must see every tick.
  std::vector<std::unique_ptr<net::Client>> subscribers;
  for (size_t i = 0; i < kSubscribers; ++i) {
    auto sub = net::Client::Connect("127.0.0.1", server.port(),
                                    "sub" + std::to_string(i));
    if (!sub.ok()) {
      std::fprintf(stderr, "%s\n", sub.status().ToString().c_str());
      return result;
    }
    for (QueryId id : ids) {
      if (Status s = (*sub)->Subscribe(id); !s.ok()) {
        std::fprintf(stderr, "subscribe: %s\n", s.ToString().c_str());
        return result;
      }
    }
    subscribers.push_back(std::move(*sub));
  }
  std::vector<std::unique_ptr<net::Client>> producers;
  for (size_t i = 0; i < kProducers; ++i) {
    auto prod = net::Client::Connect("127.0.0.1", server.port(),
                                     "prod" + std::to_string(i));
    if (!prod.ok()) {
      std::fprintf(stderr, "%s\n", prod.status().ToString().c_str());
      return result;
    }
    producers.push_back(std::move(*prod));
  }

  std::atomic<uint64_t> pushes{0};
  std::atomic<bool> failed{false};
  double ms = TimeMs([&] {
    std::vector<std::thread> threads;
    // Producer k streams ticks k, k+P, k+2P, ... — the reorder buffer
    // reassembles the interleaving server-side.
    for (size_t p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        for (size_t i = p; i < batches.size(); i += kProducers) {
          Status s;
          do {
            s = producers[p]->Ingest(batches[i]);
            if (!s.ok() && s.code() == StatusCode::kOutOfRange) {
              std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
          } while (!s.ok() && s.code() == StatusCode::kOutOfRange &&
                   !failed.load());
          if (!s.ok()) {
            std::fprintf(stderr, "ingest: %s\n", s.ToString().c_str());
            failed.store(true);
            return;
          }
        }
      });
    }
    for (size_t i = 0; i < kSubscribers; ++i) {
      threads.emplace_back([&, i] {
        Timestamp seen = 0;
        while (seen < horizon && !failed.load()) {
          auto update =
              subscribers[i]->NextUpdate(std::chrono::milliseconds(60000));
          if (!update.ok()) {
            std::fprintf(stderr, "subscriber %zu: %s\n", i,
                         update.status().ToString().c_str());
            failed.store(true);
            return;
          }
          seen = std::max(seen, update->t);
          pushes.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  });
  server.Stop();
  runtime.ingest().Close();
  runtime.Stop();
  if (failed.load()) return result;

  result.pushes = pushes.load();
  result.complete = result.pushes ==
                    static_cast<uint64_t>(horizon) * kSubscribers;
  result.ticks_per_sec = Throughput(horizon, ms);
  JsonLine()
      .Add("bench", std::string("t08_network_serving"))
      .Add("clients", kProducers + kSubscribers)
      .Add("producers", kProducers)
      .Add("subscribers", kSubscribers)
      .Add("queries", queries.size())
      .Add("ticks", static_cast<size_t>(horizon))
      .Add("pushes", static_cast<size_t>(result.pushes))
      .Add("time_ms", ms)
      .Add("ticks_per_sec", result.ticks_per_sec)
      .Print();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const Timestamp horizon = smoke ? 50 : 200;
  std::printf(
      "Network serving | end-to-end ticks/sec over TCP, %zu producers + "
      "%zu subscribers, horizon %u%s\n",
      kProducers, kSubscribers, horizon, smoke ? " (smoke)" : "");
  auto scenario = RandomWalkScenario(kTags, horizon, /*seed=*/43);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  auto archive = scenario->BuildDatabase(StreamKind::kFiltered);
  if (!archive.ok()) {
    std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
    return 1;
  }
  auto batches = ExtractBatches(**archive);
  if (!batches.ok()) {
    std::fprintf(stderr, "%s\n", batches.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> queries = MakeQueries(*scenario);
  CellResult cell = RunCell(**archive, *batches, queries, horizon);
  if (cell.ticks_per_sec <= 0) return 1;
  std::printf("ticks/s   %12.1f end to end (%llu pushes to %zu "
              "subscribers)\n",
              cell.ticks_per_sec,
              static_cast<unsigned long long>(cell.pushes), kSubscribers);
  if (!cell.complete) {
    std::fprintf(stderr,
                 "delivery gap: expected %llu pushes\n",
                 static_cast<unsigned long long>(horizon) * kSubscribers);
    return 1;
  }
  return 0;
}
