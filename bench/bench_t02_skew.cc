// Section 4.2.2, skew study: the paper's ground truth came from noisy
// participant annotations; widening the tolerance d raises every system's
// precision and recall but leaves the *relative* ranking stable. We inject
// uniform annotation skew into the exact simulator truth and sweep d.
#include "bench_util.h"

using namespace lahar;
using namespace lahar::bench;

int main() {
  const Timestamp kHorizon = 500;
  const size_t kWorkers = 6;
  const Timestamp kSkew = 5;  // injected annotation error
  const double kRho = 0.10;

  auto scenario = OfficeScenario(kWorkers, kHorizon, /*seed=*/2008,
                                 QualityConfig());
  if (!scenario.ok()) return 1;
  TagQualityData data = CollectTagQuality(*scenario, StreamKind::kFiltered,
                                          Determinization::kMle);
  // Skew the per-tag truth annotations.
  Rng rng(4242);
  for (auto& truth : data.truths) {
    truth = InjectSkew(truth, kSkew, kHorizon, &rng);
  }

  std::printf("Sec 4.2.2 | quality vs tolerance d under +-%u-step annotation "
              "skew (rho=%.2f, %zu true events)\n",
              kSkew, kRho, data.total_truth);
  std::printf("%-6s | %-8s %-8s %-8s | %-8s %-8s %-8s | %s\n", "d", "Lahar.P",
              "Lahar.R", "Lahar.F1", "MLE.P", "MLE.R", "MLE.F1",
              "Lahar wins F1");
  int wins = 0, rows = 0;
  double prev_lahar_f1 = -1;
  bool monotone = true;
  for (Timestamp d : {2, 4, 6, 8, 12, 16, 24, 32}) {
    QualityScore l = data.LaharAt(kRho, d);
    QualityScore m = data.BaselineScore(d);
    std::printf("%-6u | %-8.3f %-8.3f %-8.3f | %-8.3f %-8.3f %-8.3f | %s\n",
                d, l.precision, l.recall, l.f1, m.precision, m.recall, m.f1,
                l.f1 >= m.f1 ? "yes" : "no");
    wins += l.f1 >= m.f1;
    ++rows;
    if (l.f1 < prev_lahar_f1 - 1e-9) monotone = false;
    prev_lahar_f1 = l.f1;
  }
  std::printf("\nLahar F1 >= MLE F1 in %d/%d settings; quality rises with d "
              "(%s)\n",
              wins, rows, monotone ? "monotone" : "mostly monotone");
  std::printf("(paper: all approaches improve with d; the relative ranking "
              "is stable)\n");
  return 0;
}
