// Section 3.5 / Prop. 3.20: the sampling engine's (epsilon, delta)
// trade-off. For each epsilon we run the Hoeffding-sized sampler against
// the exact engine and report the worst per-timestep deviation and the
// cost — quantifying the "orders of magnitude" gap the performance figures
// rely on.
#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "engine/extended_engine.h"
#include "engine/sampling_engine.h"

using namespace lahar;
using namespace lahar::bench;

int main() {
  const Timestamp kHorizon = 60;
  auto scenario = RandomWalkScenario(10, kHorizon, /*seed=*/55);
  auto db = scenario->BuildDatabase(StreamKind::kFiltered);
  if (!db.ok()) return 1;
  size_t tuples = (*db)->TotalTuples();
  Lahar lahar(db->get());
  auto prepared = lahar.Prepare(kQ2Sequence);
  if (!prepared.ok()) return 1;

  auto exact_engine =
      ExtendedRegularEngine::Create(prepared->normalized, **db);
  if (!exact_engine.ok()) return 1;
  std::vector<double> exact;
  double exact_ms = TimeMs([&] { exact = exact_engine->Run(); });

  std::printf("Prop 3.20 | sampling accuracy/cost vs exact evaluation "
              "(query Q2, 10 tags, horizon 60)\n");
  std::printf("exact engine: %.1f ms (%.0f tuples/s)\n\n", exact_ms,
              Throughput(tuples, exact_ms));
  std::printf("%-8s %-8s %-9s %-12s %-10s %-12s %-10s\n", "eps", "delta",
              "samples", "max |err|", "within eps", "time(ms)",
              "slowdown");
  for (double eps : {0.2, 0.1, 0.05, 0.02}) {
    const double delta = 0.1;
    SamplingOptions options;
    options.epsilon = eps;
    options.delta = delta;
    options.seed = 77;
    auto engine = SamplingEngine::Create(prepared->ast, **db, options);
    if (!engine.ok()) return 1;
    std::vector<double> approx;
    double ms = TimeMs([&] {
      auto probs = engine->Run();
      if (probs.ok()) approx = std::move(*probs);
    });
    double max_err = 0;
    size_t violations = 0;
    for (Timestamp t = 1; t <= kHorizon; ++t) {
      double err = std::fabs(approx[t] - exact[t]);
      max_err = std::max(max_err, err);
      violations += err > eps;
    }
    std::printf("%-8.2f %-8.2f %-9zu %-12.4f %-10s %-12.1f %-9.1fx\n", eps,
                delta, engine->num_samples(), max_err,
                violations == 0 ? "yes" : "mostly", ms,
                exact_ms > 0 ? ms / exact_ms : 0.0);
  }
  std::printf("\n(shape: error tracks epsilon; cost grows ~1/eps^2, always "
              "far above the exact engine)\n");
  return 0;
}
