#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/classify.h"
#include "engine/reference.h"
#include "engine/regular_engine.h"
#include "query/normalize.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddCertainStream;
using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;
using ::lahar::testing::AddRelation;
using ::lahar::testing::MustParse;
using ::lahar::testing::StepDist;

// Runs the regular engine and compares every timestep against brute-force
// possible-world enumeration.
void ExpectMatchesBruteForce(EventDatabase* db, const std::string& text,
                             double tol = 1e-9) {
  QueryPtr q = MustParse(db, text);
  ASSERT_NE(q, nullptr);
  ASSERT_OK(ValidateQuery(*q, *db));
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  ASSERT_EQ(Classify(*nq, *db).query_class, QueryClass::kRegular) << text;
  auto engine = RegularEngine::Create(*nq, *db);
  ASSERT_OK(engine.status());
  std::vector<double> got = engine->Run();
  auto want = BruteForceProbabilities(*q, *db);
  ASSERT_OK(want.status());
  ASSERT_EQ(got.size(), want->size());
  for (size_t t = 1; t < got.size(); ++t) {
    EXPECT_NEAR(got[t], (*want)[t], tol) << text << " at t=" << t;
  }
}

TEST(RegularEngineTest, SingleEventSelection) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k", {{{"a", 0.4}, {"b", 0.5}}, {{"a", 0.2}}});
  ExpectMatchesBruteForce(&db, "R('k', x : x = 'a')");
}

TEST(RegularEngineTest, Example311BothQueries) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k",
                       {{{"a", 0.9}}, {{"c", 0.5}, {"b", 0.3}}, {{"b", 0.8}}});
  ExpectMatchesBruteForce(&db, "R('k', x : x = 'a'); R('k', y : y = 'b')");
  ExpectMatchesBruteForce(&db, "(R('k', x : x = 'a'); R('k', y)) WHERE y = 'b'");
}

TEST(RegularEngineTest, ThreeStepSequence) {
  EventDatabase db;
  AddIndependentStream(
      &db, "At", "Joe",
      {{{"o", 0.7}, {"h", 0.2}}, {{"c", 0.5}, {"h", 0.4}},
       {{"o", 0.6}, {"c", 0.3}}, {{"o", 0.5}, {"h", 0.5}}});
  ExpectMatchesBruteForce(&db,
                          "At('Joe', l1 : l1 = 'o'); At('Joe', l2 : l2 = 'c'); "
                          "At('Joe', l3 : l3 = 'o')");
}

TEST(RegularEngineTest, KleenePlusHallways) {
  EventDatabase db;
  AddRelation(&db, "Hall", {{"h"}});
  AddIndependentStream(
      &db, "At", "Joe",
      {{{"a", 0.8}, {"h", 0.1}}, {{"h", 0.6}, {"a", 0.2}},
       {{"h", 0.5}, {"c", 0.4}}, {{"c", 0.7}, {"h", 0.2}}});
  ExpectMatchesBruteForce(&db,
                          "At('Joe', l1 : l1 = 'a'); "
                          "At('Joe', l2)+{ : Hall(l2)}; "
                          "At('Joe', l3 : l3 = 'c')");
}

TEST(RegularEngineTest, LeadingKleene) {
  EventDatabase db;
  AddRelation(&db, "Hall", {{"h"}});
  AddIndependentStream(&db, "At", "Joe",
                       {{{"h", 0.5}, {"a", 0.3}}, {{"h", 0.7}}, {{"a", 0.9}}});
  ExpectMatchesBruteForce(&db, "At('Joe', l)+{ : Hall(l)}");
}

TEST(RegularEngineTest, TwoIndependentStreamsJoinFreeConjunction) {
  // Two different people; the regular query watches only Joe, while Sue's
  // stream exists in the database but must not disturb the result.
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}, {{"b", 0.5}}});
  AddIndependentStream(&db, "At", "Sue", {{{"b", 0.5}}, {{"a", 0.5}}});
  ExpectMatchesBruteForce(&db,
                          "At('Joe', l1 : l1 = 'a'); At('Joe', l2 : l2 = 'b')");
}

TEST(RegularEngineTest, CrossStreamSequence) {
  // A regular query whose subgoals draw from two distinct streams.
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"a", 0.6}}, {{"a", 0.3}}});
  AddIndependentStream(&db, "S", "k2", {{{"b", 0.2}}, {{"b", 0.7}}});
  ExpectMatchesBruteForce(&db, "R('k1', x : x = 'a'); S('k2', y : y = 'b')");
}

TEST(RegularEngineTest, MarkovianStreamExact) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall"}, 4, 0.8);
  ExpectMatchesBruteForce(&db,
                          "At('Joe', l1 : l1 = 'room'); "
                          "At('Joe', l2 : l2 = 'room')");
}

TEST(RegularEngineTest, MarkovianKleeneOccupancy) {
  // "In the room for 3 consecutive steps" — the Fig. 11 shape.
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall", "lobby"}, 5, 0.6);
  ExpectMatchesBruteForce(
      &db,
      "At('Joe', l1 : l1 = 'room'); At('Joe', l2 : l2 = 'room'); "
      "At('Joe', l3 : l3 = 'room')");
}

TEST(RegularEngineTest, MarkovCorrelationsChangeTheAnswer) {
  // Same marginals, different correlations: the Markov chain must not agree
  // with an independence assumption. Self-transition 0.9 makes two
  // consecutive room sightings much likelier than the 0.25 independent
  // estimate.
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall"}, 2, 0.9);
  QueryPtr q = MustParse(
      &db, "At('Joe', l1 : l1 = 'room'); At('Joe', l2 : l2 = 'room')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto engine = RegularEngine::Create(*nq, db);
  ASSERT_OK(engine.status());
  std::vector<double> probs = engine->Run();
  EXPECT_NEAR(probs[2], 0.5 * 0.9, 1e-12);  // P[room@1] * P[room@2 | room@1]
}

TEST(RegularEngineTest, SimultaneousEventsOnOneStream) {
  // A subgoal matching two different values of the same stream at the same
  // timestep: the probabilities are disjoint, not independent.
  EventDatabase db;
  AddIndependentStream(&db, "R", "k", {{{"a", 0.3}, {"b", 0.4}}, {{"c", 0.5}}});
  AddRelation(&db, "Good", {{"a"}, {"b"}});
  ExpectMatchesBruteForce(&db, "R('k', x : Good(x)); R('k', y : y = 'c')");
}

TEST(RegularEngineTest, StepBeyondHorizonHoldsSteady) {
  EventDatabase db;
  AddCertainStream(&db, "R", "k", {"a"});
  QueryPtr q = MustParse(&db, "R('k', x : x = 'a')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto engine = RegularEngine::Create(*nq, db);
  ASSERT_OK(engine.status());
  EXPECT_NEAR(engine->chain().Step(), 1.0, 1e-12);  // t=1: accept
  // Past the horizon the stream is silent; the match completed at t=1, so
  // q@t for t>1 is false (no new accepting event).
  EXPECT_NEAR(engine->chain().Step(), 0.0, 1e-12);
}

TEST(RegularEngineTest, AcceptTrackingComputesIntervalProbability) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k", {{{"a", 0.5}}, {{"a", 0.5}}});
  QueryPtr q = MustParse(&db, "R('k', x : x = 'a')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto chain = RegularChain::Create(*nq, db);
  ASSERT_OK(chain.status());
  chain->EnableAcceptTracking();
  chain->Step();
  EXPECT_NEAR(chain->AcceptedProb(), 0.5, 1e-12);           // q[1,1]
  chain->Step();
  EXPECT_NEAR(chain->AcceptedProb(), 1 - 0.25, 1e-12);      // q[1,2]
}


TEST(RegularEngineTest, DisjunctivePredicateMatchesBruteForce) {
  EventDatabase db;
  AddRelation(&db, "Hall", {{"h"}});
  AddRelation(&db, "Lobby", {{"lb"}});
  AddIndependentStream(&db, "At", "Joe",
                       {{{"h", 0.4}, {"lb", 0.3}, {"o", 0.2}},
                        {{"o", 0.5}, {"h", 0.4}}});
  ExpectMatchesBruteForce(
      &db, "At('Joe', l1 : Hall(l1) OR Lobby(l1)); At('Joe', l2 : l2 = 'o')");
}

}  // namespace
}  // namespace lahar
