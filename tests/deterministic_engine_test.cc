#include <gtest/gtest.h>

#include "engine/deterministic_engine.h"
#include "inference/viterbi.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::MustParse;

TEST(ViterbiTest, MlePicksArgmaxPerStep) {
  EventDatabase db;
  StreamId id = AddIndependentStream(
      &db, "At", "Joe", {{{"a", 0.6}, {"b", 0.3}}, {{"b", 0.8}}, {{"a", 0.2}}});
  const Stream& s = db.stream(id);
  auto path = MlePath(s);
  EXPECT_EQ(path[1], s.LookupTuple({db.Sym("a")}));
  EXPECT_EQ(path[2], s.LookupTuple({db.Sym("b")}));
  EXPECT_EQ(path[3], kBottom);  // bottom mass 0.8 dominates
}

TEST(ViterbiTest, ViterbiPrefersConsistentPath) {
  // Marginals alone favor hopping; the CPT strongly favors staying, so the
  // MAP path stays in one room (the Fig. 11(b) phenomenon).
  EventDatabase db;
  lahar::testing::DeclareUnarySchema(&db, "At");
  Stream s(db.interner().Intern("At"), {db.Sym("Joe")}, 1, 3, true);
  DomainIndex r1 = s.InternTuple({db.Sym("room1")});
  DomainIndex r2 = s.InternTuple({db.Sym("room2")});
  ASSERT_OK(s.SetInitial({0.0, 0.55, 0.45}));
  Matrix cpt(3, 3, 0.0);
  cpt.At(0, 0) = 1.0;
  cpt.At(r1, r1) = 0.9;
  cpt.At(r1, r2) = 0.1;
  cpt.At(r2, r2) = 0.9;
  cpt.At(r2, r1) = 0.1;
  ASSERT_OK(s.SetCpt(1, cpt));
  ASSERT_OK(s.SetCpt(2, cpt));
  ASSERT_OK(s.FinalizeMarkov());
  auto path = ViterbiPath(s);
  EXPECT_EQ(path[1], r1);
  EXPECT_EQ(path[2], r1);
  EXPECT_EQ(path[3], r1);
}

TEST(ViterbiTest, IndependentStreamFallsBackToMle) {
  EventDatabase db;
  StreamId id =
      AddIndependentStream(&db, "At", "Joe", {{{"a", 0.9}}, {{"b", 0.6}}});
  EXPECT_EQ(ViterbiPath(db.stream(id)), MlePath(db.stream(id)));
}

TEST(DeterministicEngineTest, MleDetectsHighConfidenceSequence) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe",
                       {{{"a", 0.9}}, {{"b", 0.8}}, {{"c", 0.7}}});
  QueryPtr q = MustParse(&db, "At('Joe', l1 : l1 = 'a'); At('Joe', l2 : l2 = 'b')");
  auto engine = DeterministicEngine::Create(q, db, Determinization::kMle);
  ASSERT_OK(engine.status());
  EXPECT_TRUE(engine->incremental());
  auto sat = engine->Run();
  ASSERT_OK(sat.status());
  EXPECT_EQ(*sat, (std::vector<bool>{false, false, true, false}));
}

TEST(DeterministicEngineTest, MleMissesLowConfidenceEvent) {
  // Each step the true location is 'a' with 0.45 < bottom 0.55: MLE sees
  // nothing at all — the recall failure motivating Lahar.
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.45}}, {{"a", 0.45}}});
  QueryPtr q = MustParse(&db, "At('Joe', l1 : l1 = 'a'); At('Joe', l2 : l2 = 'a')");
  auto engine = DeterministicEngine::Create(q, db, Determinization::kMle);
  ASSERT_OK(engine.status());
  auto sat = engine->Run();
  ASSERT_OK(sat.status());
  EXPECT_EQ(*sat, (std::vector<bool>{false, false, false}));
}

TEST(DeterministicEngineTest, ExtendedQueryOverPeople) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.9}}, {{"c", 0.9}}});
  AddIndependentStream(&db, "At", "Sue", {{{"a", 0.9}}, {{"b", 0.9}}});
  QueryPtr q = MustParse(&db, "At(x, l1 : l1 = 'a'); At(x, l2 : l2 = 'b')");
  auto engine = DeterministicEngine::Create(q, db, Determinization::kMle);
  ASSERT_OK(engine.status());
  auto sat = engine->Run();
  ASSERT_OK(sat.status());
  EXPECT_EQ(*sat, (std::vector<bool>{false, false, true}));  // Sue fires
}

TEST(DeterministicEngineTest, GeneralPathViaReference) {
  // A safe (non-regular-groundable) query runs through the reference
  // evaluator on the determinized world.
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 0.9}}, {}});
  AddIndependentStream(&db, "S", "k1", {{}, {{"v", 0.9}}});
  QueryPtr q = MustParse(&db, "R(x, u1); S(x, u2)");
  // x shared in key positions of different types: still extended regular,
  // so force the general path with an unsafe query instead.
  QueryPtr unsafe_q = MustParse(&db, "(R(p1, x); S(p2, y)) WHERE x = y");
  auto engine =
      DeterministicEngine::Create(unsafe_q, db, Determinization::kMle);
  ASSERT_OK(engine.status());
  EXPECT_FALSE(engine->incremental());
  auto sat = engine->Run();
  ASSERT_OK(sat.status());
  // MLE world: R=u@1, S=v@2; u != v so the join predicate fails.
  EXPECT_EQ(*sat, (std::vector<bool>{false, false, false}));
  (void)q;
}

}  // namespace
}  // namespace lahar
