// Unit tests for the concurrent streaming runtime: ingestion queue and
// backpressure, watermark gating, declaration cloning / batch replay, the
// standing-query registry, and StreamRuntime end-to-end equivalence with
// sequential StreamingSession evaluation. The heavier many-query /
// many-tick equivalence run lives in runtime_stress_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "engine/streaming.h"
#include "runtime/executor.h"
#include "runtime/ingest.h"
#include "runtime/registry.h"
#include "runtime/replay.h"
#include "runtime/stats.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;
using ::lahar::testing::StepDist;
using namespace std::chrono_literals;

TickBatch MakeBatch(Timestamp t) {
  TickBatch b;
  b.t = t;
  return b;
}

TEST(IngestQueueTest, FifoAndCapacity) {
  IngestQueue q(2);
  EXPECT_TRUE(q.TryPush(MakeBatch(1)));
  EXPECT_TRUE(q.TryPush(MakeBatch(2)));
  EXPECT_FALSE(q.TryPush(MakeBatch(3)));  // full: dropped
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.dropped(), 1u);
  auto a = q.Pop();
  auto b = q.Pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->t, 1u);
  EXPECT_EQ(b->t, 2u);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(IngestQueueTest, ClosedRejectionsAreNotCountedAsDrops) {
  IngestQueue q(2);
  ASSERT_TRUE(q.TryPush(MakeBatch(1)));
  q.Close();
  EXPECT_FALSE(q.TryPush(MakeBatch(2)));
  EXPECT_FALSE(q.TryPush(MakeBatch(3)));
  // Shutdown rejections must not pollute the backpressure counter.
  EXPECT_EQ(q.dropped(), 0u);
  EXPECT_EQ(q.closed_rejected(), 2u);
}

TEST(IngestQueueTest, PushDeadlineExpiresWhenFull) {
  IngestQueue q(1);
  ASSERT_TRUE(q.TryPush(MakeBatch(1)));
  Status s = q.Push(MakeBatch(2), 10ms);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(IngestQueueTest, PushUnblocksWhenConsumerDrains) {
  IngestQueue q(1);
  ASSERT_TRUE(q.TryPush(MakeBatch(1)));
  std::thread consumer([&] {
    std::this_thread::sleep_for(20ms);
    q.Pop();
  });
  EXPECT_OK(q.Push(MakeBatch(2), 5000ms));
  consumer.join();
  auto b = q.Pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->t, 2u);
}

TEST(IngestQueueTest, CloseRejectsPushesAndWakesWaiters) {
  IngestQueue q(1);
  ASSERT_TRUE(q.TryPush(MakeBatch(1)));
  std::thread closer([&] {
    std::this_thread::sleep_for(20ms);
    q.Close();
  });
  Status s = q.Push(MakeBatch(2), 5000ms);  // blocked on full, then closed
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  closer.join();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.TryPush(MakeBatch(3)));
  // Queued batches survive Close and drain normally.
  auto b = q.Pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->t, 1u);
  // PopWait on a closed, drained queue returns immediately.
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopWait(5000ms).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 1000ms);
}

TEST(WatermarkTest, SafeIsMinOverTrackedStreams) {
  Watermark w;
  EXPECT_EQ(w.Safe(), Watermark::kUnbounded);  // nothing tracked
  w.Track(0, 3);
  w.Track(1, 5);
  EXPECT_EQ(w.Safe(), 3u);
  w.Advance(0, 7);
  EXPECT_EQ(w.Safe(), 5u);
  w.Advance(1, 4);  // non-monotone advances are ignored
  EXPECT_EQ(w.Safe(), 5u);
}

TEST(WatermarkTest, EndedStreamsStopGating) {
  Watermark w;
  w.Track(0, 2);
  w.Track(1, 10);
  EXPECT_EQ(w.Safe(), 2u);
  w.MarkEnded(0);
  EXPECT_EQ(w.Safe(), 10u);
  w.MarkEnded(1);
  EXPECT_EQ(w.Safe(), Watermark::kUnbounded);  // all ended: nothing gates
}

TEST(WatermarkTest, EndedStreamStaysEndedThroughAdvance) {
  Watermark w;
  w.Track(0, 2);
  w.Track(1, 4);
  w.MarkEnded(0);
  EXPECT_TRUE(w.ended(0));
  EXPECT_EQ(w.Safe(), 4u);
  // A straggler Advance for an ended stream must not resurrect it as a
  // gating stream at the advanced tick.
  w.Advance(0, 3);
  EXPECT_TRUE(w.ended(0));
  EXPECT_EQ(w.Safe(), 4u);
  w.MarkEnded(1);
  EXPECT_EQ(w.Safe(), Watermark::kUnbounded);
}

TEST(WatermarkTest, ReTrackRevivesAnEndedStream) {
  Watermark w;
  w.Track(0, 5);
  w.MarkEnded(0);
  EXPECT_EQ(w.Safe(), Watermark::kUnbounded);
  // The stream grew again (e.g. checkpoint restore re-tracks everything):
  // Track re-registers it at its current horizon and it gates ticks again.
  w.Track(0, 7);
  EXPECT_FALSE(w.ended(0));
  EXPECT_EQ(w.Safe(), 7u);
}

TEST(ApplyBatchTest, AppendsMarginalsAndAdvancesWatermark) {
  EventDatabase db;
  StreamId id = AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}});
  Watermark w;
  w.Track(id, db.stream(id).horizon());
  TickBatch batch = MakeBatch(2);
  batch.updates.push_back({id, {0.25, 0.75}, std::nullopt});
  ASSERT_OK(ApplyBatch(&db, batch, &w));
  EXPECT_EQ(db.stream(id).horizon(), 2u);
  EXPECT_EQ(w.Safe(), 2u);
  EXPECT_EQ(db.stream(id).MarginalAt(2)[1], 0.75);
}

TEST(ApplyBatchTest, RejectsWrongTimestep) {
  EventDatabase db;
  StreamId id = AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}});
  Watermark w;
  w.Track(id, 1);
  TickBatch batch = MakeBatch(4);  // horizon is 1, so only t=2 is valid
  batch.updates.push_back({id, {0.5, 0.5}, std::nullopt});
  EXPECT_FALSE(ApplyBatch(&db, batch, &w).ok());
  EXPECT_EQ(w.Safe(), 1u);
}

TEST(ApplyBatchTest, SeedsMarkovianStreamThenChainsCpts) {
  // A Markovian stream declared empty: the t=1 batch carries the initial
  // marginal, later ticks carry CPTs — the streaming counterpart of
  // SetInitial + SetCpt + FinalizeMarkov.
  EventDatabase db;
  lahar::testing::DeclareUnarySchema(&db, "At");
  Stream s(db.interner().Intern("At"), {db.Sym("Joe")}, 1, 0,
           /*markovian=*/true);
  s.InternTuple({db.Sym("a")});
  s.InternTuple({db.Sym("b")});
  auto id = db.AddStream(std::move(s));
  ASSERT_TRUE(id.ok());
  Watermark w;
  w.Track(*id, 0);

  TickBatch init = MakeBatch(1);
  init.updates.push_back({*id, {0.0, 0.5, 0.5}, std::nullopt});
  ASSERT_OK(ApplyBatch(&db, init, &w));
  EXPECT_EQ(w.Safe(), 1u);

  Matrix cpt(3, 3, 0.0);
  cpt.At(0, 0) = 1.0;
  cpt.At(1, 1) = 0.9;
  cpt.At(1, 2) = 0.1;
  cpt.At(2, 2) = 1.0;
  TickBatch step = MakeBatch(2);
  step.updates.push_back({*id, {}, cpt});
  ASSERT_OK(ApplyBatch(&db, step, &w));
  EXPECT_EQ(w.Safe(), 2u);
  const Stream& stream = db.stream(*id);
  EXPECT_EQ(stream.horizon(), 2u);
  EXPECT_NEAR(stream.MarginalAt(2)[1], 0.45, 1e-12);
  EXPECT_NEAR(stream.MarginalAt(2)[2], 0.55, 1e-12);
}

TEST(ApplyBatchTest, RejectedBatchLeavesEveryStreamAndWatermarkUntouched) {
  // A batch whose *last* update is invalid must not half-apply: the valid
  // leading updates stay out of the database too.
  EventDatabase db;
  StreamId a = AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}});
  StreamId b = AddIndependentStream(&db, "At", "Sue", {{{"a", 0.5}}});
  Watermark w;
  w.Track(a, 1);
  w.Track(b, 1);
  TickBatch batch = MakeBatch(2);
  batch.updates.push_back({a, {0.25, 0.75}, std::nullopt});
  batch.updates.push_back({b, {0.9, 0.9}, std::nullopt});  // sums to 1.8
  Status s = ApplyBatch(&db, batch, &w);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(db.stream(a).horizon(), 1u);
  EXPECT_EQ(db.stream(b).horizon(), 1u);
  EXPECT_EQ(db.horizon(), 1u);
  EXPECT_EQ(w.Safe(), 1u);
  // Fixing the bad update and retrying the same tick applies cleanly —
  // nothing was consumed by the failed attempt.
  batch.updates[1].marginal = {0.1, 0.9};
  ASSERT_OK(ApplyBatch(&db, batch, &w));
  EXPECT_EQ(db.stream(a).horizon(), 2u);
  EXPECT_EQ(db.stream(b).horizon(), 2u);
  EXPECT_EQ(w.Safe(), 2u);
}

TEST(ApplyBatchTest, RejectsDuplicateStreamWithinOneBatch) {
  EventDatabase db;
  StreamId id = AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}});
  TickBatch batch = MakeBatch(2);
  batch.updates.push_back({id, {0.5, 0.5}, std::nullopt});
  batch.updates.push_back({id, {0.4, 0.6}, std::nullopt});
  EXPECT_FALSE(ApplyBatch(&db, batch, nullptr).ok());
  EXPECT_EQ(db.stream(id).horizon(), 1u);
}

TEST(ReorderBufferTest, HoldsEarlyTicksUntilDue) {
  EventDatabase db;
  StreamId id = AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}});
  Watermark w;
  w.Track(id, 1);
  ReorderBuffer buf(4);
  // t=3 arrives before t=2: buffered, nothing due.
  TickBatch early = MakeBatch(3);
  early.updates.push_back({id, {0.3, 0.7}, std::nullopt});
  std::vector<StreamUpdate> due;
  ASSERT_OK(buf.Offer(db, std::move(early), &due));
  EXPECT_TRUE(due.empty());
  EXPECT_EQ(buf.depth(), 1u);
  TickBatch ready;
  EXPECT_FALSE(buf.PopDue(db, &ready));
  // t=2 arrives: due immediately; applying it makes the buffered t=3 due.
  TickBatch now = MakeBatch(2);
  now.updates.push_back({id, {0.4, 0.6}, std::nullopt});
  ASSERT_OK(buf.Offer(db, std::move(now), &due));
  ASSERT_EQ(due.size(), 1u);
  ASSERT_OK(ApplyBatch(&db, TickBatch{2, std::move(due)}, &w));
  ASSERT_TRUE(buf.PopDue(db, &ready));
  EXPECT_EQ(ready.t, 3u);
  ASSERT_OK(ApplyBatch(&db, ready, &w));
  EXPECT_EQ(buf.depth(), 0u);
  EXPECT_EQ(db.stream(id).horizon(), 3u);
  EXPECT_EQ(db.stream(id).MarginalAt(3)[1], 0.7);
}

TEST(ReorderBufferTest, CountsLateDuplicatesAndMerges) {
  EventDatabase db;
  StreamId id = AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}});
  ReorderBuffer buf(4);
  std::vector<StreamUpdate> due;
  // t=1 is already applied: benign duplicate, dropped.
  TickBatch late = MakeBatch(1);
  late.updates.push_back({id, {0.5, 0.5}, std::nullopt});
  ASSERT_OK(buf.Offer(db, std::move(late), &due));
  EXPECT_TRUE(due.empty());
  EXPECT_EQ(buf.late_dropped(), 1u);
  // Two arrivals for the same future (tick, stream) slot: first wins.
  TickBatch first = MakeBatch(3);
  first.updates.push_back({id, {0.3, 0.7}, std::nullopt});
  ASSERT_OK(buf.Offer(db, std::move(first), &due));
  TickBatch second = MakeBatch(3);
  second.updates.push_back({id, {0.9, 0.1}, std::nullopt});
  ASSERT_OK(buf.Offer(db, std::move(second), &due));
  EXPECT_EQ(buf.depth(), 1u);
  EXPECT_EQ(buf.merged(), 1u);
}

TEST(ReorderBufferTest, RejectsBeyondWindowLeavingBufferUntouched) {
  EventDatabase db;
  StreamId id = AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}});
  ReorderBuffer buf(2);  // horizon 1: ticks 2..4 acceptable
  std::vector<StreamUpdate> due;
  TickBatch far = MakeBatch(5);
  far.updates.push_back({id, {0.5, 0.5}, std::nullopt});
  Status s = buf.Offer(db, std::move(far), &due);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(due.empty());
  EXPECT_EQ(buf.depth(), 0u);
  // A mixed batch with one out-of-window update is rejected whole: the due
  // update it carried is not consumed either.
  TickBatch mixed = MakeBatch(2);
  mixed.updates.push_back({id, {0.4, 0.6}, std::nullopt});
  TickBatch bad = MakeBatch(5);
  bad.updates.push_back({id, {0.5, 0.5}, std::nullopt});
  ASSERT_OK(buf.Offer(db, std::move(mixed), &due));
  EXPECT_EQ(due.size(), 1u);
  EXPECT_FALSE(buf.Offer(db, std::move(bad), &due).ok());
  EXPECT_EQ(due.size(), 1u);
}

TEST(ReorderBufferTest, StrictWindowZeroRejectsAnythingNotDue) {
  EventDatabase db;
  StreamId id = AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}});
  ReorderBuffer buf(0);
  std::vector<StreamUpdate> due;
  TickBatch next = MakeBatch(2);
  next.updates.push_back({id, {0.4, 0.6}, std::nullopt});
  ASSERT_OK(buf.Offer(db, std::move(next), &due));
  EXPECT_EQ(due.size(), 1u);
  TickBatch future = MakeBatch(3);
  future.updates.push_back({id, {0.4, 0.6}, std::nullopt});
  EXPECT_EQ(buf.Offer(db, std::move(future), &due).code(),
            StatusCode::kOutOfRange);
}

TEST(ReplayTest, CloneDeclarationsPreservesSymbolsAndDomains) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}, {"b", 0.3}}});
  AddMarkovStream(&db, "At", "Sue", {"a", "b", "c"}, 3, 0.8);
  lahar::testing::AddRelation(&db, "Room", {{"a"}, {"b"}});
  auto clone = CloneDeclarations(db);
  ASSERT_OK(clone.status());
  EXPECT_EQ((*clone)->num_streams(), db.num_streams());
  EXPECT_EQ((*clone)->horizon(), 0u);
  // Symbol ids survive, so values interned against either database agree.
  EXPECT_EQ((*clone)->interner().Intern("Sue"), db.interner().Intern("Sue"));
  for (StreamId id = 0; id < db.num_streams(); ++id) {
    const Stream& src = db.stream(id);
    const Stream& dst = (*clone)->stream(id);
    EXPECT_EQ(dst.horizon(), 0u);
    EXPECT_EQ(dst.markovian(), src.markovian());
    EXPECT_EQ(dst.domain_size(), src.domain_size());
  }
  const Relation* room =
      (*clone)->FindRelation((*clone)->interner().Intern("Room"));
  ASSERT_NE(room, nullptr);
  EXPECT_EQ(room->size(), 2u);
}

TEST(ReplayTest, ExtractedBatchesReproduceTheArchiveBitForBit) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe",
                       {{{"a", 0.7}, {"b", 0.2}},
                        {{"b", 0.6}},
                        {{"a", 0.9}, {"b", 0.1}}});
  AddMarkovStream(&db, "At", "Sue", {"a", "b"}, 3, 0.9);
  auto clone = CloneDeclarations(db);
  ASSERT_OK(clone.status());
  auto batches = ExtractBatches(db);
  ASSERT_OK(batches.status());
  ASSERT_EQ(batches->size(), 3u);
  Watermark w;
  for (StreamId id = 0; id < (*clone)->num_streams(); ++id) w.Track(id, 0);
  for (const TickBatch& b : *batches) {
    ASSERT_OK(ApplyBatch(clone->get(), b, &w));
  }
  EXPECT_EQ((*clone)->horizon(), db.horizon());
  for (StreamId id = 0; id < db.num_streams(); ++id) {
    const Stream& src = db.stream(id);
    const Stream& dst = (*clone)->stream(id);
    ASSERT_EQ(dst.horizon(), src.horizon());
    for (Timestamp t = 1; t <= src.horizon(); ++t) {
      EXPECT_EQ(dst.MarginalAt(t), src.MarginalAt(t)) << "t=" << t;
    }
  }
}

TEST(RegistryTest, ServesEveryClassAndTagsRejections) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 0.5}}});
  AddIndependentStream(&db, "S", "k1", {{{"v", 0.5}}});
  AddIndependentStream(&db, "T", "a", {{{"w", 0.5}}});
  QueryRegistry registry(&db);
  uint64_t v0 = registry.version();
  auto id = registry.Register("R('k1', u : u = 'u')", /*tick=*/0);
  ASSERT_OK(id.status());
  EXPECT_NE(registry.version(), v0);
  EXPECT_NE(registry.Find(*id), nullptr);
  EXPECT_EQ(registry.size(), 1u);

  // Unsafe queries host as approximate sampling sessions by default.
  auto unsafe_id = registry.Register("(R(x, u1); S(y, u2)) WHERE u1 = u2",
                                     /*tick=*/0);
  ASSERT_OK(unsafe_id.status());
  StandingQuery* unsafe_q = registry.Find(*unsafe_id);
  ASSERT_NE(unsafe_q, nullptr);
  EXPECT_EQ(unsafe_q->query_class, QueryClass::kUnsafe);
  EXPECT_EQ(unsafe_q->engine, EngineKind::kSampling);
  EXPECT_FALSE(unsafe_q->exact);
  EXPECT_EQ(registry.size(), 2u);
  ASSERT_OK(registry.Unregister(*unsafe_id));

  // With the sampling fallback disabled, the rejection names the query
  // class in the status payload so callers can route on it.
  LaharOptions exact_only;
  exact_only.allow_sampling_fallback = false;
  QueryRegistry strict(&db, exact_only);
  auto bad = strict.Register("(R(x, u1); S(y, u2)) WHERE u1 = u2", /*tick=*/0);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnsafeQuery);
  const std::string* cls = bad.status().GetPayload(kQueryClassPayload);
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(*cls, "Unsafe");
  EXPECT_EQ(strict.size(), 0u);

  ASSERT_OK(registry.Unregister(*id));
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.Unregister(*id).code(), StatusCode::kNotFound);
}

TEST(RegistryTest, PreparedOverloadSkipsReparse) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}});
  auto prepared = PrepareQuery("At('Joe', l : l = 'a')", &db);
  ASSERT_OK(prepared.status());
  QueryRegistry registry(&db);
  auto id = registry.Register(*prepared, "At('Joe', l : l = 'a')", /*tick=*/1);
  ASSERT_OK(id.status());
  EXPECT_EQ(registry.Find(*id)->session->time(), 1u);  // caught up
}

TEST(RegistryTest, LateRegistrationCatchesUpToTheTick) {
  // Register after 3 timesteps are archived: the session replays the prefix
  // and lands at the same probability a from-the-start session reports.
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe",
                       {{{"a", 0.7}, {"b", 0.2}},
                        {{"b", 0.6}, {"a", 0.3}},
                        {{"a", 0.9}, {"b", 0.1}}});
  auto baseline = StreamingSession::Create(&db, "At('Joe', l : l = 'a')");
  ASSERT_OK(baseline.status());
  for (int t = 0; t < 3; ++t) {
    ASSERT_OK(baseline->Advance().status());
  }
  QueryRegistry registry(&db);
  auto id = registry.Register("At('Joe', l : l = 'a')", /*tick=*/3);
  ASSERT_OK(id.status());
  StandingQuery* q = registry.Find(*id);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->session->time(), 3u);
  // Bit-identical: the catch-up replays the same Advance() sequence, so the
  // per-chain state matches a from-the-start session exactly.
  auto* streaming = dynamic_cast<StreamingSession*>(q->session.get());
  ASSERT_NE(streaming, nullptr);
  EXPECT_EQ(streaming->engine().chain_probs(),
            baseline->engine().chain_probs());
}

// Feeds `batches` into `runtime` and collects every published TickResult.
std::vector<TickResult> RunToCompletion(StreamRuntime* runtime,
                                        std::vector<TickBatch> batches) {
  std::vector<TickResult> results;
  runtime->SetTickCallback(
      [&](const TickResult& r) { results.push_back(r); });
  runtime->Start();
  Timestamp last = 0;
  for (TickBatch& b : batches) {
    last = b.t;
    EXPECT_OK(runtime->ingest().Push(std::move(b), 10000ms));
  }
  EXPECT_TRUE(runtime->WaitForTick(last, 10000ms));
  runtime->Stop();
  return results;
}

TEST(StreamRuntimeTest, MatchesSequentialSessionsBitForBit) {
  // Archive a small mixed database, replay it through the runtime, and
  // compare every tick against sequential StreamingSession evaluation on
  // the archive itself.
  EventDatabase archive;
  AddIndependentStream(&archive, "At", "Joe",
                       {{{"a", 0.7}, {"b", 0.2}},
                        {{"b", 0.6}, {"a", 0.3}},
                        {{"b", 0.5}},
                        {{"a", 0.9}}});
  AddMarkovStream(&archive, "At", "Sue", {"a", "b"}, 4, 0.85);
  const std::vector<std::string> queries = {
      "At('Joe', l : l = 'a')",
      "At('Sue', l1 : l1 = 'a'); At('Sue', l2 : l2 = 'b')",
      "At(x, l : l = 'b')",  // Extended Regular: one chain per tag
  };

  std::vector<std::vector<double>> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto session = StreamingSession::Create(&archive, queries[i]);
    ASSERT_OK(session.status());
    for (Timestamp t = 1; t <= archive.horizon(); ++t) {
      auto p = session->Advance();
      ASSERT_OK(p.status());
      expected[i].push_back(*p);
    }
  }

  for (size_t threads : {1u, 4u}) {
    auto clone = CloneDeclarations(archive);
    ASSERT_OK(clone.status());
    auto batches = ExtractBatches(archive);
    ASSERT_OK(batches.status());
    RuntimeOptions options;
    options.num_threads = threads;
    options.queue_capacity = 2;  // exercise blocking Push
    StreamRuntime runtime(clone->get(), options);
    std::vector<QueryId> ids;
    for (const std::string& q : queries) {
      auto id = runtime.Register(q);
      ASSERT_OK(id.status());
      ids.push_back(*id);
    }
    std::vector<TickResult> results =
        RunToCompletion(&runtime, std::move(*batches));
    ASSERT_EQ(results.size(), archive.horizon()) << threads << " threads";
    for (size_t t = 0; t < results.size(); ++t) {
      EXPECT_EQ(results[t].t, t + 1);
      for (size_t i = 0; i < queries.size(); ++i) {
        const double* p = results[t].Find(ids[i]);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(*p, expected[i][t])
            << queries[i] << " at t=" << t + 1 << ", " << threads
            << " threads";
      }
    }
    EXPECT_EQ(runtime.tick(), archive.horizon());
    auto latest = runtime.Latest();
    ASSERT_NE(latest, nullptr);
    EXPECT_EQ(latest->t, archive.horizon());
  }
}

TEST(StreamRuntimeTest, HotRegisterJoinsInLockstep) {
  EventDatabase archive;
  AddIndependentStream(&archive, "At", "Joe",
                       {{{"a", 0.7}, {"b", 0.2}},
                        {{"b", 0.6}, {"a", 0.3}},
                        {{"b", 0.5}, {"a", 0.1}},
                        {{"a", 0.9}}});
  const std::string query = "At('Joe', l : l = 'a')";
  auto baseline = StreamingSession::Create(&archive, query);
  ASSERT_OK(baseline.status());
  std::vector<double> expected;
  for (Timestamp t = 1; t <= archive.horizon(); ++t) {
    auto p = baseline->Advance();
    ASSERT_OK(p.status());
    expected.push_back(*p);
  }

  auto clone = CloneDeclarations(archive);
  ASSERT_OK(clone.status());
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  RuntimeOptions options;
  options.num_threads = 2;
  StreamRuntime runtime(clone->get(), options);
  runtime.Start();
  // Feed the first two ticks with no queries registered...
  for (int i = 0; i < 2; ++i) {
    ASSERT_OK(runtime.ingest().Push(std::move((*batches)[i]), 10000ms));
  }
  ASSERT_TRUE(runtime.WaitForTick(2, 10000ms));
  // ...then register: the session must replay t=1..2 and join at t=3 with
  // the same state a from-the-start session would have.
  auto id = runtime.Register(query);
  ASSERT_OK(id.status());
  for (size_t i = 2; i < batches->size(); ++i) {
    ASSERT_OK(runtime.ingest().Push(std::move((*batches)[i]), 10000ms));
  }
  ASSERT_TRUE(runtime.WaitForTick(4, 10000ms));
  auto latest = runtime.Latest();
  ASSERT_NE(latest, nullptr);
  const double* p = latest->Find(*id);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, expected[3]);
  ASSERT_OK(runtime.Unregister(*id));
  runtime.Stop();
}

TEST(StreamRuntimeTest, StatsCountTicksQueriesAndQueue) {
  EventDatabase archive;
  AddIndependentStream(&archive, "At", "Joe",
                       {{{"a", 0.5}}, {{"a", 0.4}}, {{"a", 0.3}}});
  auto clone = CloneDeclarations(archive);
  ASSERT_OK(clone.status());
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  RuntimeOptions options;
  options.num_threads = 2;
  StreamRuntime runtime(clone->get(), options);
  auto id = runtime.Register("At('Joe', l : l = 'a')");
  ASSERT_OK(id.status());
  RunToCompletion(&runtime, std::move(*batches));
  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.tick, 3u);
  EXPECT_EQ(stats.ticks_processed, 3u);
  EXPECT_EQ(stats.num_queries, 1u);
  EXPECT_EQ(stats.num_threads, 2u);
  EXPECT_EQ(stats.batches_applied, 3u);
  EXPECT_EQ(stats.batches_rejected, 0u);
  EXPECT_TRUE(stats.last_ingest_error.empty());
  EXPECT_EQ(stats.tick_latency.count, 3u);
  ASSERT_EQ(stats.queries.size(), 1u);
  EXPECT_EQ(stats.queries[0].id, *id);
  EXPECT_EQ(stats.queries[0].ticks, 3u);
  EXPECT_EQ(stats.queries[0].advance.count, 3u);
  ASSERT_EQ(stats.shards.size(), 2u);
  uint64_t chains = 0;
  for (const ShardStats& s : stats.shards) chains += s.chains_stepped;
  EXPECT_EQ(chains, 3u);  // 1 chain x 3 ticks
  // The plan here was built once from static estimates (registry-version
  // rebuild); drift counters only accrue on measured rebuilds, and whole-
  // session steals are counted separately from split-group placements.
  EXPECT_EQ(stats.rebalances, 0u);
  EXPECT_EQ(stats.steals, 0u);
  EXPECT_EQ(stats.split_placements, 0u);
  // Both serializations render without blowing up.
  EXPECT_NE(stats.ToString().find("ticks"), std::string::npos);
  EXPECT_NE(stats.ToJson().find("\"tick\""), std::string::npos);
  EXPECT_NE(stats.ToJson().find("\"split_placements\""), std::string::npos);
}

TEST(StreamRuntimeTest, SimdUnitsAreReportedInStats) {
  EventDatabase archive;
  // Dense self-biased CPT over three states: density 10/16 clears the
  // auto step-mode threshold, so the standing query's chain takes the
  // vectorized path and shows up in the simd_units counters.
  AddMarkovStream(&archive, "At", "Joe", {"a", "b", "c"}, 4, 0.7);
  auto clone = CloneDeclarations(archive);
  ASSERT_OK(clone.status());
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  StreamRuntime runtime(clone->get(), RuntimeOptions{});
  auto id = runtime.Register("At('Joe', l1 : l1 = 'a'); At('Joe', l2 : l2 = 'b')");
  ASSERT_OK(id.status());
  RunToCompletion(&runtime, std::move(*batches));
  RuntimeStats stats = runtime.Stats();
  ASSERT_EQ(stats.queries.size(), 1u);
  EXPECT_EQ(stats.queries[0].simd_units, 1u);
  EXPECT_EQ(stats.simd_units, 1u);
  EXPECT_NE(stats.ToJson().find("\"simd_units\":1"), std::string::npos);
}

TEST(StreamRuntimeTest, MalformedBatchIsCountedNotFatal) {
  EventDatabase archive;
  AddIndependentStream(&archive, "At", "Joe", {{{"a", 0.5}}, {{"a", 0.4}}});
  auto clone = CloneDeclarations(archive);
  ASSERT_OK(clone.status());
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  RuntimeOptions options;
  options.num_threads = 1;
  options.reorder_window = 2;  // t=7 at horizon 0 is far beyond 1+2
  StreamRuntime runtime(clone->get(), options);
  ASSERT_OK(runtime.Register("At('Joe', l : l = 'a')").status());
  runtime.Start();
  TickBatch bogus;
  bogus.t = 7;  // nothing covers t=6 yet
  bogus.updates.push_back({0, {0.5, 0.5}, std::nullopt});
  ASSERT_OK(runtime.ingest().Push(std::move(bogus), 10000ms));
  for (TickBatch& b : *batches) {
    ASSERT_OK(runtime.ingest().Push(std::move(b), 10000ms));
  }
  ASSERT_TRUE(runtime.WaitForTick(2, 10000ms));
  runtime.Stop();
  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.batches_applied, 2u);
  EXPECT_EQ(stats.batches_rejected, 1u);
  EXPECT_FALSE(stats.last_ingest_error.empty());
  EXPECT_EQ(stats.tick, 2u);
}

TEST(StreamRuntimeTest, SingleThreadedRuntimeStillReportsShardStats) {
  // num_threads == 1 runs chain work inline on the coordinator; that path
  // used to vanish from the stats entirely (no shard counters at all).
  EventDatabase archive;
  AddIndependentStream(&archive, "At", "Joe",
                       {{{"a", 0.5}}, {{"a", 0.4}}, {{"a", 0.3}}});
  auto clone = CloneDeclarations(archive);
  ASSERT_OK(clone.status());
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  RuntimeOptions options;
  options.num_threads = 1;
  StreamRuntime runtime(clone->get(), options);
  ASSERT_OK(runtime.Register("At('Joe', l : l = 'a')").status());
  RunToCompletion(&runtime, std::move(*batches));
  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.num_threads, 1u);
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_EQ(stats.shards[0].ticks, 3u);
  EXPECT_EQ(stats.shards[0].chains_stepped, 3u);  // 1 chain x 3 ticks
  EXPECT_EQ(stats.shards[0].tick.count, 3u);
}

TEST(StreamRuntimeTest, OutOfOrderIngestIsBufferedAndApplied) {
  // Push ticks 2, 3, 1 (in that order): the reorder buffer holds 2 and 3
  // until 1 lands, then the runtime drains all three and the published
  // results match an in-order run bit for bit.
  EventDatabase archive;
  AddIndependentStream(&archive, "At", "Joe",
                       {{{"a", 0.7}, {"b", 0.2}},
                        {{"b", 0.6}, {"a", 0.3}},
                        {{"a", 0.9}}});
  AddMarkovStream(&archive, "At", "Sue", {"a", "b"}, 3, 0.85);
  const std::string query = "At('Joe', l : l = 'a')";
  auto baseline = StreamingSession::Create(&archive, query);
  ASSERT_OK(baseline.status());
  std::vector<double> expected;
  for (Timestamp t = 1; t <= archive.horizon(); ++t) {
    auto p = baseline->Advance();
    ASSERT_OK(p.status());
    expected.push_back(*p);
  }

  auto clone = CloneDeclarations(archive);
  ASSERT_OK(clone.status());
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  ASSERT_EQ(batches->size(), 3u);
  RuntimeOptions options;
  options.num_threads = 2;
  options.reorder_window = 8;
  StreamRuntime runtime(clone->get(), options);
  auto id = runtime.Register(query);
  ASSERT_OK(id.status());
  std::vector<TickResult> results;
  runtime.SetTickCallback([&](const TickResult& r) { results.push_back(r); });
  runtime.Start();
  for (size_t i : {1u, 2u, 0u}) {
    ASSERT_OK(runtime.ingest().Push(std::move((*batches)[i]), 10000ms));
  }
  // Duplicate of tick 1 after the fact: dropped as late, not an error.
  auto dup = ExtractBatches(archive);
  ASSERT_OK(dup.status());
  ASSERT_OK(runtime.ingest().Push(std::move((*dup)[0]), 10000ms));
  ASSERT_TRUE(runtime.WaitForTick(3, 10000ms));
  // The duplicate is dropped asynchronously; wait for the counter, not just
  // the tick.
  for (int i = 0; i < 1000; ++i) {
    if (runtime.Stats().reorder_late_dropped > 0) break;
    std::this_thread::sleep_for(2ms);
  }
  runtime.Stop();
  ASSERT_EQ(results.size(), 3u);
  for (size_t t = 0; t < results.size(); ++t) {
    const double* p = results[t].Find(*id);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, expected[t]) << "t=" << t + 1;
  }
  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.batches_rejected, 0u);
  EXPECT_TRUE(stats.last_ingest_error.empty());
  EXPECT_EQ(stats.reorder_depth, 0u);
  EXPECT_EQ(stats.reorder_window, 8u);
  // The duplicate tick-1 batch was shed update-by-update as late.
  EXPECT_GT(stats.reorder_late_dropped, 0u);
}

TEST(StreamRuntimeTest, WaitForTickWakesPromptlyOnStop) {
  // A waiter blocked on a tick that will never arrive must wake (and
  // return false) as soon as the runtime stops, not sleep out its timeout.
  EventDatabase archive;
  AddIndependentStream(&archive, "At", "Joe", {{{"a", 0.5}}});
  auto clone = CloneDeclarations(archive);
  ASSERT_OK(clone.status());
  StreamRuntime runtime(clone->get(), RuntimeOptions{});
  runtime.Start();
  std::atomic<bool> woke_with{true};
  const auto start = std::chrono::steady_clock::now();
  std::thread waiter(
      [&] { woke_with.store(runtime.WaitForTick(100, 60000ms)); });
  std::this_thread::sleep_for(50ms);
  runtime.Stop();
  waiter.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(woke_with.load());
  EXPECT_LT(elapsed, 10s) << "WaitForTick slept through Stop()";
}

// Windowed execution is an optimisation, not a semantics change: the same
// preloaded workload run with the default 16-tick window cap and with a
// 1-tick cap (pure tick-at-a-time, the pre-windowing behavior) must
// publish bit-identical TickResult sequences and byte-identical
// checkpoints. One query per class — Regular, Extended Regular, Safe
// plan, and Unsafe-via-sampling (whose many-sample session is heavy
// enough to be split across shards, exercising the shared-group path).
TEST(StreamRuntimeTest, WindowWidthIsObservationallyEquivalent) {
  constexpr Timestamp kWinHorizon = 24;
  EventDatabase archive;
  std::vector<StepDist> joe;
  for (Timestamp t = 0; t < kWinHorizon; ++t) {
    joe.push_back(t % 3 == 0 ? StepDist{{"a", 0.7}, {"b", 0.2}}
                             : StepDist{{"b", 0.5}, {"a", 0.3}});
  }
  AddIndependentStream(&archive, "At", "Joe", joe);
  AddMarkovStream(&archive, "At", "Sue", {"a", "b"}, kWinHorizon, 0.85);

  LaharOptions session_options;
  session_options.plan.assume_distinct_keys = true;  // for the Safe plan
  session_options.sampling.num_samples = 64;
  session_options.sampling.seed = 2008;

  const std::vector<std::string> queries = {
      "At('Joe', l : l = 'a')",                 // Regular
      "At(x, l : l = 'b')",                     // Extended Regular
      "At(p, l1); At(p, l2); At(q, l3)",        // Safe plan
      "(At(x, l1); At(y, l2)) WHERE l1 = l2",   // Unsafe -> sampling
  };

  struct Run {
    std::vector<QueryId> ids;
    std::vector<TickResult> results;
    std::string checkpoint;
    uint64_t windows = 0;
    size_t cap = 0;
  };
  auto run_with_cap = [&](size_t cap) {
    Run out;
    auto clone = CloneDeclarations(archive);
    EXPECT_OK(clone.status());
    auto batches = ExtractBatches(archive);
    EXPECT_OK(batches.status());
    RuntimeOptions options;
    options.num_threads = 4;
    options.max_window_ticks = cap;
    options.queue_capacity = batches->size();  // preload: windows fill up
    options.session = session_options;
    StreamRuntime runtime(clone->get(), options);
    for (const std::string& q : queries) {
      auto id = runtime.Register(q);
      EXPECT_OK(id.status());
      out.ids.push_back(id.ok() ? *id : 0);
    }
    for (TickBatch& b : *batches) {
      EXPECT_TRUE(runtime.ingest().TryPush(std::move(b)));
    }
    runtime.SetTickCallback(
        [&](const TickResult& r) { out.results.push_back(r); });
    runtime.Start();
    EXPECT_TRUE(runtime.WaitForTick(kWinHorizon, 60000ms));
    runtime.Stop();
    auto snapshot = runtime.Checkpoint();
    EXPECT_OK(snapshot.status());
    if (snapshot.ok()) out.checkpoint = *snapshot;
    RuntimeStats stats = runtime.Stats();
    out.windows = stats.windows_executed;
    out.cap = stats.max_window_ticks;
    for (const QueryStats& qs : stats.queries) {
      EXPECT_EQ(qs.errors, 0u) << qs.text << ": " << qs.last_error;
    }
    return out;
  };

  Run wide = run_with_cap(16);
  Run narrow = run_with_cap(1);

  EXPECT_EQ(wide.cap, 16u);
  EXPECT_EQ(narrow.cap, 1u);
  // W=1 runs one window per tick; W=16 over a fully preloaded queue must
  // actually batch (24 ticks -> a 16-tick window plus an 8-tick one).
  EXPECT_EQ(narrow.windows, static_cast<uint64_t>(kWinHorizon));
  EXPECT_LT(wide.windows, static_cast<uint64_t>(kWinHorizon));

  ASSERT_EQ(wide.results.size(), kWinHorizon);
  ASSERT_EQ(narrow.results.size(), kWinHorizon);
  ASSERT_EQ(wide.ids, narrow.ids);
  for (size_t t = 0; t < kWinHorizon; ++t) {
    EXPECT_EQ(wide.results[t].t, t + 1);
    EXPECT_EQ(narrow.results[t].t, t + 1);
    for (size_t i = 0; i < queries.size(); ++i) {
      const double* pw = wide.results[t].Find(wide.ids[i]);
      const double* pn = narrow.results[t].Find(narrow.ids[i]);
      ASSERT_NE(pw, nullptr);
      ASSERT_NE(pn, nullptr);
      EXPECT_EQ(*pw, *pn) << queries[i] << " at t=" << t + 1;
    }
  }
  ASSERT_FALSE(wide.checkpoint.empty());
  EXPECT_EQ(wide.checkpoint, narrow.checkpoint)
      << "checkpoint bytes differ between window caps";
}

TEST(StreamRuntimeTest, SetTickCallbackWhileRunningIsSafe) {
  // Swapping the callback concurrently with the coordinator publishing
  // ticks must be race-free (this is what the TSan runtime job checks).
  EventDatabase archive;
  std::vector<StepDist> steps(40, StepDist{{"a", 0.5}});
  AddIndependentStream(&archive, "At", "Joe", steps);
  auto clone = CloneDeclarations(archive);
  ASSERT_OK(clone.status());
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  RuntimeOptions options;
  options.num_threads = 2;
  StreamRuntime runtime(clone->get(), options);
  ASSERT_OK(runtime.Register("At('Joe', l : l = 'a')").status());
  runtime.Start();
  std::atomic<uint64_t> seen{0};
  std::thread swapper([&] {
    for (int i = 0; i < 100; ++i) {
      runtime.SetTickCallback([&](const TickResult&) {
        seen.fetch_add(1, std::memory_order_relaxed);
      });
      std::this_thread::sleep_for(1ms);
    }
  });
  for (TickBatch& b : *batches) {
    ASSERT_OK(runtime.ingest().Push(std::move(b), 10000ms));
  }
  ASSERT_TRUE(runtime.WaitForTick(40, 10000ms));
  swapper.join();
  runtime.Stop();
  EXPECT_EQ(runtime.tick(), 40u);
}

}  // namespace
}  // namespace lahar
