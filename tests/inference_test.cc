#include <gtest/gtest.h>

#include <cmath>

#include "inference/hmm.h"
#include "inference/particle_filter.h"

namespace lahar {
namespace {

// A two-state HMM with known posteriors for hand-checking.
DiscreteHmm TwoState(double stay) {
  Matrix t(2, 2);
  t.At(0, 0) = stay;
  t.At(0, 1) = 1 - stay;
  t.At(1, 0) = 1 - stay;
  t.At(1, 1) = stay;
  auto hmm = DiscreteHmm::Create({0.5, 0.5}, t);
  EXPECT_TRUE(hmm.ok());
  return std::move(*hmm);
}

TEST(HmmTest, CreateValidatesInputs) {
  Matrix t(2, 2, 0.5);
  EXPECT_FALSE(DiscreteHmm::Create({0.6, 0.6}, t).ok());  // bad prior
  Matrix bad(2, 2, 0.4);
  EXPECT_FALSE(DiscreteHmm::Create({0.5, 0.5}, bad).ok());  // bad rows
  EXPECT_FALSE(DiscreteHmm::Create({1.0}, t).ok());         // shape
  EXPECT_TRUE(DiscreteHmm::Create({0.5, 0.5}, t).ok());
}

TEST(HmmTest, FilterSingleStepIsBayesRule) {
  DiscreteHmm hmm = TwoState(0.8);
  // Observation 4x more likely in state 0.
  auto filtered = hmm.Filter({{0.8, 0.2}});
  ASSERT_TRUE(filtered.ok());
  EXPECT_NEAR((*filtered)[0][0], 0.8, 1e-12);
  EXPECT_NEAR((*filtered)[0][1], 0.2, 1e-12);
}

TEST(HmmTest, FilterPropagatesThroughTransition) {
  DiscreteHmm hmm = TwoState(1.0);  // frozen chain: state never changes
  auto filtered = hmm.Filter({{0.9, 0.1}, {0.9, 0.1}});
  ASSERT_TRUE(filtered.ok());
  // Two independent observations of the same hidden state compound.
  double expect = (0.9 * 0.9) / (0.9 * 0.9 + 0.1 * 0.1);
  EXPECT_NEAR((*filtered)[1][0], expect, 1e-12);
}

TEST(HmmTest, SmoothingUsesFutureEvidence) {
  DiscreteHmm hmm = TwoState(0.9);
  // Uninformative now, strong evidence for state 0 later.
  auto smoothed = hmm.Smooth({{1.0, 1.0}, {1.0, 1.0}, {0.99, 0.01}});
  ASSERT_TRUE(smoothed.ok());
  auto filtered = hmm.Filter({{1.0, 1.0}, {1.0, 1.0}, {0.99, 0.01}});
  ASSERT_TRUE(filtered.ok());
  // At t=0 the filter knows nothing; the smoother leans toward state 0.
  EXPECT_NEAR((*filtered)[0][0], 0.5, 1e-12);
  EXPECT_GT(smoothed->marginals[0][0], 0.7);
}

TEST(HmmTest, SmoothedMarginalsMatchFilterAtLastStep) {
  DiscreteHmm hmm = TwoState(0.7);
  Likelihoods obs = {{0.2, 0.8}, {0.6, 0.4}, {0.5, 0.5}};
  auto smoothed = hmm.Smooth(obs);
  auto filtered = hmm.Filter(obs);
  ASSERT_TRUE(smoothed.ok());
  ASSERT_TRUE(filtered.ok());
  EXPECT_NEAR(smoothed->marginals[2][0], (*filtered)[2][0], 1e-9);
}

TEST(HmmTest, CptsAreStochasticAndConsistent) {
  DiscreteHmm hmm = TwoState(0.85);
  Likelihoods obs = {{0.3, 0.7}, {0.9, 0.1}, {0.5, 0.5}, {0.2, 0.8}};
  auto smoothed = hmm.Smooth(obs);
  ASSERT_TRUE(smoothed.ok());
  ASSERT_EQ(smoothed->cpts.size(), 3u);
  for (size_t t = 0; t + 1 < obs.size(); ++t) {
    const Matrix& cpt = smoothed->cpts[t];
    // Rows are distributions.
    for (size_t i = 0; i < 2; ++i) {
      EXPECT_NEAR(cpt.At(i, 0) + cpt.At(i, 1), 1.0, 1e-9);
    }
    // Chaining the smoothed marginal through the CPT reproduces the next
    // smoothed marginal: gamma_{t+1} = gamma_t * CPT_t.
    std::vector<double> chained = cpt.LeftMultiply(smoothed->marginals[t]);
    EXPECT_NEAR(chained[0], smoothed->marginals[t + 1][0], 1e-9);
    EXPECT_NEAR(chained[1], smoothed->marginals[t + 1][1], 1e-9);
  }
}

TEST(HmmTest, MapPathPicksConsistentExplanation) {
  DiscreteHmm hmm = TwoState(0.95);
  // Noisy flip in the middle of a run of state-0 evidence.
  Likelihoods obs = {{0.9, 0.1}, {0.9, 0.1}, {0.4, 0.6}, {0.9, 0.1}};
  auto path = hmm.MapPath(obs);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, (std::vector<size_t>{0, 0, 0, 0}));
}

TEST(HmmTest, ZeroLikelihoodObservationIsAnError) {
  DiscreteHmm hmm = TwoState(0.9);
  EXPECT_FALSE(hmm.Filter({{0.0, 0.0}}).ok());
  EXPECT_FALSE(hmm.Smooth({{0.0, 0.0}}).ok());
}

TEST(HmmTest, SampleTrajectoryFollowsTransitions) {
  DiscreteHmm hmm = TwoState(1.0);  // frozen
  Rng rng(3);
  auto path = hmm.SampleTrajectory(10, &rng);
  for (size_t t = 1; t < path.size(); ++t) EXPECT_EQ(path[t], path[0]);
}

TEST(ParticleFilterTest, ConvergesToExactFilterOnAverage) {
  DiscreteHmm hmm = TwoState(0.8);
  Likelihoods obs = {{0.9, 0.1}, {0.5, 0.5}, {0.2, 0.8}};
  auto exact = hmm.Filter(obs);
  ASSERT_TRUE(exact.ok());
  auto approx = RunParticleFilter(hmm, obs, 20000, Rng(7));
  for (size_t t = 0; t < obs.size(); ++t) {
    EXPECT_NEAR(approx[t][0], (*exact)[t][0], 0.03) << t;
  }
}

TEST(ParticleFilterTest, ChurnProducesSamplingNoise) {
  // With few particles the histogram differs from the exact posterior —
  // this is the "particle churn" the paper's real-time experiments show.
  DiscreteHmm hmm = TwoState(0.5);
  Likelihoods obs(20, {1.0, 1.0});  // uninformative
  auto approx = RunParticleFilter(hmm, obs, 50, Rng(5));
  double max_dev = 0;
  for (const auto& m : approx) {
    max_dev = std::max(max_dev, std::fabs(m[0] - 0.5));
  }
  EXPECT_GT(max_dev, 0.01);
  EXPECT_LT(max_dev, 0.5);
}

TEST(ParticleFilterTest, RecoversFromTotalDepletion) {
  DiscreteHmm hmm = TwoState(1.0);  // frozen in initial state
  ParticleFilter pf(&hmm, 100, Rng(9));
  // First force all particles to state 0...
  pf.Step({1.0, 0.0});
  // ...then observe something only possible in state 1. The frozen chain
  // cannot move particles there; depletion recovery reseeds.
  std::vector<double> hist = pf.Step({0.0, 1.0});
  EXPECT_NEAR(hist[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace lahar
