// The compiled-kernel path's contract is *bit-identical* probabilities to
// the dynamic map path (the semantic reference): both enumerate successors
// in one canonical order with the same multiplication tree, so every
// comparison here is EXPECT_EQ on doubles, not EXPECT_NEAR.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/extended_engine.h"
#include "engine/regular_engine.h"
#include "query/normalize.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;
using ::lahar::testing::AddRelation;
using ::lahar::testing::MustParse;
using ::lahar::testing::StepDist;

ChainOptions MapOnly() {
  ChainOptions o;
  o.kernel.max_flat_states = 0;  // force the dynamic map path
  return o;
}

// Steps a kernel-path chain and a map-path chain in lockstep over the whole
// horizon (plus a few past-horizon steps) and demands equality on every
// tick. `expect_compiled` asserts the kernel path actually engaged, so a
// silently-failed compilation can't turn this into map-vs-map.
void ExpectPathsIdentical(EventDatabase* db, const std::string& text,
                          bool expect_compiled = true) {
  QueryPtr q = MustParse(db, text);
  ASSERT_NE(q, nullptr);
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto kernel_chain = RegularChain::Create(*nq, *db);
  ASSERT_OK(kernel_chain.status());
  auto map_chain = RegularChain::Create(*nq, *db, MapOnly());
  ASSERT_OK(map_chain.status());
  EXPECT_EQ(kernel_chain->compiled(), expect_compiled) << text;
  EXPECT_FALSE(map_chain->compiled());
  for (Timestamp t = 1; t <= db->horizon() + 3; ++t) {
    double pk = kernel_chain->Step();
    double pm = map_chain->Step();
    EXPECT_EQ(pk, pm) << text << " diverges at t=" << t;
    EXPECT_EQ(kernel_chain->AcceptProb(), map_chain->AcceptProb());
    EXPECT_EQ(kernel_chain->NumStates(), map_chain->NumStates());
  }
}

TEST(KernelEquivalenceTest, IndependentSequence) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe",
                       {{{"a", 0.8}, {"h", 0.1}},
                        {{"h", 0.6}, {"a", 0.2}},
                        {{"h", 0.5}, {"c", 0.4}},
                        {{"c", 0.7}, {"h", 0.2}}});
  ExpectPathsIdentical(&db,
                       "At('Joe', l1 : l1 = 'a'); At('Joe', l2 : l2 = 'c')");
}

TEST(KernelEquivalenceTest, KleenePlus) {
  EventDatabase db;
  AddRelation(&db, "Hall", {{"h"}});
  AddIndependentStream(&db, "At", "Joe",
                       {{{"a", 0.8}, {"h", 0.1}},
                        {{"h", 0.6}, {"a", 0.2}},
                        {{"h", 0.5}, {"c", 0.4}},
                        {{"c", 0.7}, {"h", 0.2}}});
  ExpectPathsIdentical(&db,
                       "At('Joe', l1 : l1 = 'a'); "
                       "At('Joe', l2)+{ : Hall(l2)}; "
                       "At('Joe', l3 : l3 = 'c')");
}

TEST(KernelEquivalenceTest, MarkovianChain) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall", "lobby"}, 6, 0.6);
  ExpectPathsIdentical(&db,
                       "At('Joe', l1 : l1 = 'room'); "
                       "At('Joe', l2 : l2 = 'room'); "
                       "At('Joe', l3 : l3 = 'room')");
}

TEST(KernelEquivalenceTest, MixedMarkovAndIndependentStreams) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall"}, 5, 0.7);
  AddIndependentStream(&db, "Door", "d1",
                       {{{"open", 0.3}},
                        {{"open", 0.9}},
                        {{"shut", 0.5}, {"open", 0.4}},
                        {{"open", 0.2}},
                        {{"open", 0.6}}});
  ExpectPathsIdentical(&db,
                       "At('Joe', l : l = 'room'); Door('d1', s : s = 'open')");
}

TEST(KernelEquivalenceTest, AcceptTrackingInterval) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall"}, 6, 0.8);
  QueryPtr q = MustParse(
      &db, "At('Joe', l1 : l1 = 'room'); At('Joe', l2 : l2 = 'hall')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto kc = RegularChain::Create(*nq, db);
  auto mc = RegularChain::Create(*nq, db, MapOnly());
  ASSERT_OK(kc.status());
  ASSERT_OK(mc.status());
  ASSERT_TRUE(kc->compiled());
  // Advance to t=2, then latch: AcceptedProb at t is P[q in [3, t]].
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(kc->Step(), mc->Step());
  }
  kc->EnableAcceptTracking();
  mc->EnableAcceptTracking();
  for (Timestamp t = 3; t <= db.horizon(); ++t) {
    EXPECT_EQ(kc->Step(), mc->Step()) << "t=" << t;
    EXPECT_EQ(kc->AcceptedProb(), mc->AcceptedProb()) << "t=" << t;
  }
}

TEST(KernelEquivalenceTest, SnapshotCopiesShareKernelAndStayIdentical) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall"}, 6, 0.8);
  QueryPtr q = MustParse(
      &db, "At('Joe', l1 : l1 = 'room'); At('Joe', l2 : l2 = 'hall')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto chain = RegularChain::Create(*nq, db);
  ASSERT_OK(chain.status());
  ASSERT_TRUE(chain->compiled());
  chain->Step();
  RegularChain copy = *chain;  // the safe-plan snapshot pattern
  EXPECT_TRUE(copy.compiled());
  // Copy and original evolve identically and independently.
  for (Timestamp t = 2; t <= db.horizon(); ++t) {
    EXPECT_EQ(copy.Step(), chain->Step());
  }
}

TEST(KernelEquivalenceTest, TinyBudgetFallsBackToMapPath) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall", "lobby"}, 5, 0.6);
  QueryPtr q = MustParse(
      &db, "At('Joe', l1 : l1 = 'room'); At('Joe', l2 : l2 = 'room')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  ChainOptions tiny;
  tiny.kernel.max_flat_states = 2;  // too small for 4 hidden codes
  auto budget_chain = RegularChain::Create(*nq, db, tiny);
  auto map_chain = RegularChain::Create(*nq, db, MapOnly());
  ASSERT_OK(budget_chain.status());
  ASSERT_OK(map_chain.status());
  EXPECT_FALSE(budget_chain->compiled());
  for (Timestamp t = 1; t <= db.horizon(); ++t) {
    EXPECT_EQ(budget_chain->Step(), map_chain->Step());
  }
}

TEST(KernelEquivalenceTest, ExtendedEngineBatchedVsMap) {
  EventDatabase db;
  for (const char* who : {"A", "B", "C", "D"}) {
    AddMarkovStream(&db, "At", who, {"room", "hall"}, 6, 0.75);
  }
  QueryPtr q = MustParse(
      &db, "At(x, l1 : l1 = 'room'); At(x, l2 : l2 = 'hall')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto batched = ExtendedRegularEngine::Create(*nq, db);
  auto mapped = ExtendedRegularEngine::Create(*nq, db, MapOnly());
  ASSERT_OK(batched.status());
  ASSERT_OK(mapped.status());
  ASSERT_EQ(batched->num_chains(), 4u);
  EXPECT_EQ(batched->num_compiled(), 4u);
  EXPECT_EQ(mapped->num_compiled(), 0u);
  EXPECT_GT(batched->arena_size(), 0u);
  for (Timestamp t = 1; t <= db.horizon(); ++t) {
    EXPECT_EQ(batched->Step(), mapped->Step()) << "t=" << t;
    for (size_t i = 0; i < batched->num_chains(); ++i) {
      EXPECT_EQ(batched->chain_probs()[i], mapped->chain_probs()[i]);
    }
  }
}

TEST(KernelEquivalenceTest, ExtendedEngineWithoutArenaStillIdentical) {
  EventDatabase db;
  for (const char* who : {"A", "B"}) {
    AddMarkovStream(&db, "At", who, {"room", "hall"}, 4, 0.6);
  }
  QueryPtr q = MustParse(
      &db, "At(x, l1 : l1 = 'room'); At(x, l2 : l2 = 'hall')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  ChainOptions no_arena;
  no_arena.soa_arena = false;
  auto owned = ExtendedRegularEngine::Create(*nq, db, no_arena);
  auto batched = ExtendedRegularEngine::Create(*nq, db);
  ASSERT_OK(owned.status());
  ASSERT_OK(batched.status());
  EXPECT_EQ(owned->arena_size(), 0u);
  for (Timestamp t = 1; t <= db.horizon(); ++t) {
    EXPECT_EQ(owned->Step(), batched->Step());
  }
}

}  // namespace
}  // namespace lahar
