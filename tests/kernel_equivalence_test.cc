// The compiled-kernel path's contract is *bit-identical* probabilities to
// the dynamic map path (the semantic reference): both enumerate successors
// in one canonical order with the same multiplication tree, so every
// comparison here is EXPECT_EQ on doubles, not EXPECT_NEAR.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "automaton/simd.h"
#include "common/serial.h"
#include "engine/extended_engine.h"
#include "engine/regular_engine.h"
#include "query/normalize.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;
using ::lahar::testing::AddRelation;
using ::lahar::testing::DeclareUnarySchema;
using ::lahar::testing::MustParse;
using ::lahar::testing::StepDist;

ChainOptions MapOnly() {
  ChainOptions o;
  o.kernel.max_flat_states = 0;  // force the dynamic map path
  return o;
}

// Steps a kernel-path chain and a map-path chain in lockstep over the whole
// horizon (plus a few past-horizon steps) and demands equality on every
// tick. `expect_compiled` asserts the kernel path actually engaged, so a
// silently-failed compilation can't turn this into map-vs-map.
void ExpectPathsIdentical(EventDatabase* db, const std::string& text,
                          bool expect_compiled = true) {
  QueryPtr q = MustParse(db, text);
  ASSERT_NE(q, nullptr);
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto kernel_chain = RegularChain::Create(*nq, *db);
  ASSERT_OK(kernel_chain.status());
  auto map_chain = RegularChain::Create(*nq, *db, MapOnly());
  ASSERT_OK(map_chain.status());
  EXPECT_EQ(kernel_chain->compiled(), expect_compiled) << text;
  EXPECT_FALSE(map_chain->compiled());
  for (Timestamp t = 1; t <= db->horizon() + 3; ++t) {
    double pk = kernel_chain->Step();
    double pm = map_chain->Step();
    EXPECT_EQ(pk, pm) << text << " diverges at t=" << t;
    EXPECT_EQ(kernel_chain->AcceptProb(), map_chain->AcceptProb());
    EXPECT_EQ(kernel_chain->NumStates(), map_chain->NumStates());
  }
}

TEST(KernelEquivalenceTest, IndependentSequence) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe",
                       {{{"a", 0.8}, {"h", 0.1}},
                        {{"h", 0.6}, {"a", 0.2}},
                        {{"h", 0.5}, {"c", 0.4}},
                        {{"c", 0.7}, {"h", 0.2}}});
  ExpectPathsIdentical(&db,
                       "At('Joe', l1 : l1 = 'a'); At('Joe', l2 : l2 = 'c')");
}

TEST(KernelEquivalenceTest, KleenePlus) {
  EventDatabase db;
  AddRelation(&db, "Hall", {{"h"}});
  AddIndependentStream(&db, "At", "Joe",
                       {{{"a", 0.8}, {"h", 0.1}},
                        {{"h", 0.6}, {"a", 0.2}},
                        {{"h", 0.5}, {"c", 0.4}},
                        {{"c", 0.7}, {"h", 0.2}}});
  ExpectPathsIdentical(&db,
                       "At('Joe', l1 : l1 = 'a'); "
                       "At('Joe', l2)+{ : Hall(l2)}; "
                       "At('Joe', l3 : l3 = 'c')");
}

TEST(KernelEquivalenceTest, MarkovianChain) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall", "lobby"}, 6, 0.6);
  ExpectPathsIdentical(&db,
                       "At('Joe', l1 : l1 = 'room'); "
                       "At('Joe', l2 : l2 = 'room'); "
                       "At('Joe', l3 : l3 = 'room')");
}

TEST(KernelEquivalenceTest, MixedMarkovAndIndependentStreams) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall"}, 5, 0.7);
  AddIndependentStream(&db, "Door", "d1",
                       {{{"open", 0.3}},
                        {{"open", 0.9}},
                        {{"shut", 0.5}, {"open", 0.4}},
                        {{"open", 0.2}},
                        {{"open", 0.6}}});
  ExpectPathsIdentical(&db,
                       "At('Joe', l : l = 'room'); Door('d1', s : s = 'open')");
}

TEST(KernelEquivalenceTest, AcceptTrackingInterval) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall"}, 6, 0.8);
  QueryPtr q = MustParse(
      &db, "At('Joe', l1 : l1 = 'room'); At('Joe', l2 : l2 = 'hall')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto kc = RegularChain::Create(*nq, db);
  auto mc = RegularChain::Create(*nq, db, MapOnly());
  ASSERT_OK(kc.status());
  ASSERT_OK(mc.status());
  ASSERT_TRUE(kc->compiled());
  // Advance to t=2, then latch: AcceptedProb at t is P[q in [3, t]].
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(kc->Step(), mc->Step());
  }
  kc->EnableAcceptTracking();
  mc->EnableAcceptTracking();
  for (Timestamp t = 3; t <= db.horizon(); ++t) {
    EXPECT_EQ(kc->Step(), mc->Step()) << "t=" << t;
    EXPECT_EQ(kc->AcceptedProb(), mc->AcceptedProb()) << "t=" << t;
  }
}

TEST(KernelEquivalenceTest, SnapshotCopiesShareKernelAndStayIdentical) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall"}, 6, 0.8);
  QueryPtr q = MustParse(
      &db, "At('Joe', l1 : l1 = 'room'); At('Joe', l2 : l2 = 'hall')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto chain = RegularChain::Create(*nq, db);
  ASSERT_OK(chain.status());
  ASSERT_TRUE(chain->compiled());
  chain->Step();
  RegularChain copy = *chain;  // the safe-plan snapshot pattern
  EXPECT_TRUE(copy.compiled());
  // Copy and original evolve identically and independently.
  for (Timestamp t = 2; t <= db.horizon(); ++t) {
    EXPECT_EQ(copy.Step(), chain->Step());
  }
}

TEST(KernelEquivalenceTest, TinyBudgetFallsBackToMapPath) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall", "lobby"}, 5, 0.6);
  QueryPtr q = MustParse(
      &db, "At('Joe', l1 : l1 = 'room'); At('Joe', l2 : l2 = 'room')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  ChainOptions tiny;
  tiny.kernel.max_flat_states = 2;  // too small for 4 hidden codes
  auto budget_chain = RegularChain::Create(*nq, db, tiny);
  auto map_chain = RegularChain::Create(*nq, db, MapOnly());
  ASSERT_OK(budget_chain.status());
  ASSERT_OK(map_chain.status());
  EXPECT_FALSE(budget_chain->compiled());
  for (Timestamp t = 1; t <= db.horizon(); ++t) {
    EXPECT_EQ(budget_chain->Step(), map_chain->Step());
  }
}

TEST(KernelEquivalenceTest, ExtendedEngineBatchedVsMap) {
  EventDatabase db;
  for (const char* who : {"A", "B", "C", "D"}) {
    AddMarkovStream(&db, "At", who, {"room", "hall"}, 6, 0.75);
  }
  QueryPtr q = MustParse(
      &db, "At(x, l1 : l1 = 'room'); At(x, l2 : l2 = 'hall')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto batched = ExtendedRegularEngine::Create(*nq, db);
  auto mapped = ExtendedRegularEngine::Create(*nq, db, MapOnly());
  ASSERT_OK(batched.status());
  ASSERT_OK(mapped.status());
  ASSERT_EQ(batched->num_chains(), 4u);
  EXPECT_EQ(batched->num_compiled(), 4u);
  EXPECT_EQ(mapped->num_compiled(), 0u);
  EXPECT_GT(batched->arena_size(), 0u);
  for (Timestamp t = 1; t <= db.horizon(); ++t) {
    EXPECT_EQ(batched->Step(), mapped->Step()) << "t=" << t;
    for (size_t i = 0; i < batched->num_chains(); ++i) {
      EXPECT_EQ(batched->chain_probs()[i], mapped->chain_probs()[i]);
    }
  }
}

TEST(KernelEquivalenceTest, ExtendedEngineWithoutArenaStillIdentical) {
  EventDatabase db;
  for (const char* who : {"A", "B"}) {
    AddMarkovStream(&db, "At", who, {"room", "hall"}, 4, 0.6);
  }
  QueryPtr q = MustParse(
      &db, "At(x, l1 : l1 = 'room'); At(x, l2 : l2 = 'hall')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  ChainOptions no_arena;
  no_arena.soa_arena = false;
  auto owned = ExtendedRegularEngine::Create(*nq, db, no_arena);
  auto batched = ExtendedRegularEngine::Create(*nq, db);
  ASSERT_OK(owned.status());
  ASSERT_OK(batched.status());
  EXPECT_EQ(owned->arena_size(), 0u);
  for (Timestamp t = 1; t <= db.horizon(); ++t) {
    EXPECT_EQ(owned->Step(), batched->Step());
  }
}

// --- Randomized vectorized-vs-scalar-vs-map property sweep -----------------
//
// The vectorized SoA path (docs/PERF.md) promises the same bit-identity the
// compiled kernel promises against the map path. The sweep below drives all
// three paths over random automata, domain sizes, and arena widths chosen to
// straddle the SIMD lane width (1, lanes-1, lanes, lanes+1, 2*lanes+1 chains
// exercise every remainder-handling branch), asserting EXPECT_EQ on every
// per-tick double and on checkpoint bytes.

/// Random dense row-stochastic CPT over n codes (code 0 = bottom, absorbing).
Matrix RandomCpt(size_t n, std::mt19937_64* rng) {
  Matrix cpt(n, n, 0.0);
  cpt.At(0, 0) = 1.0;
  std::uniform_real_distribution<double> u(0.05, 1.0);
  for (size_t d = 1; d < n; ++d) {
    std::vector<double> row(n, 0.0);
    double total = 0;
    for (size_t d2 = 1; d2 < n; ++d2) {
      row[d2] = u(*rng);
      total += row[d2];
    }
    for (size_t d2 = 1; d2 < n; ++d2) cpt.At(d, d2) = row[d2] / total;
  }
  return cpt;
}

/// Markov stream with a random initial distribution and the given shared
/// CPT. Sharing the CPT across keys while randomizing initials mirrors the
/// row-pool design: per-key chains intern one transition-row class.
StreamId AddRandomMarkovStream(EventDatabase* db, const std::string& key,
                               const std::vector<std::string>& domain,
                               const Matrix& cpt, Timestamp horizon,
                               std::mt19937_64* rng) {
  DeclareUnarySchema(db, "At");
  Stream s(db->interner().Intern("At"), {db->Sym(key)}, 1, horizon,
           /*markovian=*/true);
  for (const std::string& d : domain) s.InternTuple({db->Sym(d)});
  size_t n = s.domain_size();
  std::vector<double> init(n, 0.0);
  std::uniform_real_distribution<double> u(0.05, 1.0);
  double total = 0;
  for (size_t d = 1; d < n; ++d) {
    init[d] = u(*rng);
    total += init[d];
  }
  for (size_t d = 1; d < n; ++d) init[d] /= total;
  EXPECT_TRUE(s.SetInitial(init).ok());
  for (Timestamp t = 1; t < horizon; ++t) {
    EXPECT_TRUE(s.SetCpt(t, cpt).ok());
  }
  EXPECT_TRUE(s.FinalizeMarkov().ok());
  auto id = db->AddStream(std::move(s));
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  return *id;
}

TEST(KernelEquivalenceTest, RandomizedSimdSweepBitIdentical) {
  const size_t lanes = simd::kLanes;
  const size_t widths[] = {1, lanes - 1, lanes, lanes + 1, 2 * lanes + 1};
  uint64_t seed = 20260808;
  for (size_t m : widths) {
    if (m == 0) continue;
    std::mt19937_64 rng(seed++);
    std::uniform_int_distribution<size_t> dom(2, 5);
    const size_t k = dom(rng);
    std::vector<std::string> domain;
    for (size_t j = 1; j <= k; ++j) domain.push_back("d" + std::to_string(j));
    const Timestamp horizon = 8;
    EventDatabase db;
    Matrix cpt = RandomCpt(domain.size() + 1, &rng);
    for (size_t i = 0; i < m; ++i) {
      AddRandomMarkovStream(&db, "tag" + std::to_string(i), domain, cpt,
                            horizon, &rng);
    }
    QueryPtr q =
        MustParse(&db, "At(x, l1 : l1 = 'd1'); At(x, l2 : l2 = 'd2')");
    ASSERT_NE(q, nullptr);
    auto nq = Normalize(*q);
    ASSERT_OK(nq.status());
    // The pool outlives the engines (chains hold shared_ptr row classes,
    // but the pool itself is borrowed).
    TransitionRowPool pool;
    ChainOptions scalar_opts;
    scalar_opts.step_mode = KernelStepMode::kScalar;
    ChainOptions simd_opts;
    simd_opts.step_mode = KernelStepMode::kSimd;
    simd_opts.row_pool = &pool;
    auto scalar = ExtendedRegularEngine::Create(*nq, db, scalar_opts);
    auto simd = ExtendedRegularEngine::Create(*nq, db, simd_opts);
    auto mapped = ExtendedRegularEngine::Create(*nq, db, MapOnly());
    ASSERT_OK(scalar.status());
    ASSERT_OK(simd.status());
    ASSERT_OK(mapped.status());
    ASSERT_EQ(simd->num_chains(), m);
    EXPECT_EQ(simd->num_simd(), m) << "m=" << m;
    EXPECT_EQ(scalar->num_simd(), 0u);
    for (Timestamp t = 1; t <= horizon + 2; ++t) {
      double pv = simd->Step();
      double ps = scalar->Step();
      double pm = mapped->Step();
      EXPECT_EQ(pv, ps) << "m=" << m << " t=" << t;
      EXPECT_EQ(ps, pm) << "m=" << m << " t=" << t;
      for (size_t i = 0; i < m; ++i) {
        EXPECT_EQ(simd->chain_probs()[i], mapped->chain_probs()[i])
            << "m=" << m << " t=" << t << " chain=" << i;
      }
    }
    if (m >= lanes) {
      // Identical CPT content => one shared row class => whole stripes.
      EXPECT_GT(simd->num_striped(), 0u) << "m=" << m;
      EXPECT_GT(simd->stripe_steps(), 0u) << "m=" << m;
    }
    // Checkpoint bytes are part of the bit-identity contract.
    serial::Writer wv, ws;
    simd->SaveState(&wv);
    scalar->SaveState(&ws);
    EXPECT_EQ(wv.str(), ws.str()) << "m=" << m;
  }
}

TEST(KernelEquivalenceTest, Float32RowTierWithinDocumentedBound) {
  // The float32 storage tier is NOT bit-identical; automaton/rows.h bounds
  // the drift at |Δp(t)| <= p(t) * ((1 + 2^-24)^t - 1), i.e. about
  // p * t * 2^-24. Assert a 4x-slack version of that bound per tick.
  std::mt19937_64 rng(99);
  const std::vector<std::string> domain = {"d1", "d2", "d3", "d4"};
  const Timestamp horizon = 24;
  const size_t m = simd::kLanes + 1;
  EventDatabase db;
  Matrix cpt = RandomCpt(domain.size() + 1, &rng);
  for (size_t i = 0; i < m; ++i) {
    AddRandomMarkovStream(&db, "tag" + std::to_string(i), domain, cpt,
                          horizon, &rng);
  }
  QueryPtr q = MustParse(&db, "At(x, l1 : l1 = 'd1'); At(x, l2 : l2 = 'd2')");
  ASSERT_NE(q, nullptr);
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  TransitionRowPool pool;
  ChainOptions scalar_opts;
  scalar_opts.step_mode = KernelStepMode::kScalar;
  ChainOptions f32_opts;
  f32_opts.step_mode = KernelStepMode::kSimd;
  f32_opts.float32_rows = true;
  f32_opts.row_pool = &pool;
  auto scalar = ExtendedRegularEngine::Create(*nq, db, scalar_opts);
  auto f32 = ExtendedRegularEngine::Create(*nq, db, f32_opts);
  ASSERT_OK(scalar.status());
  ASSERT_OK(f32.status());
  EXPECT_EQ(f32->num_simd(), m);
  for (Timestamp t = 1; t <= horizon; ++t) {
    double pf = f32->Step();
    double ps = scalar->Step();
    const double bound = ps * 4.0 * t * std::ldexp(1.0, -24) + 1e-18;
    EXPECT_LE(std::fabs(pf - ps), bound) << "t=" << t;
  }
}

}  // namespace
}  // namespace lahar
