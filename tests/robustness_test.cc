// Robustness tests: hostile and randomly mangled inputs must produce error
// Statuses, never crashes or accepted-garbage; accepted inputs must round
// trip through the printer.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "automaton/nfa.h"
#include "model/io.h"
#include "query/normalize.h"
#include "query/printer.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;
using ::lahar::testing::AddRelation;

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, TokenSoupNeverCrashes) {
  const char* vocab[] = {"At",  "(",  ")",  ";",    ",",   ":",   "+",
                         "{",   "}",  "x",  "'Joe'", "42",  "WHERE", "AND",
                         "OR",  "NOT", "=",  "!=",   "<",   ">=",  "R"};
  Rng rng(GetParam());
  EventDatabase db;
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    size_t len = 1 + rng.Below(15);
    for (size_t i = 0; i < len; ++i) {
      text += vocab[rng.Below(std::size(vocab))];
      text += " ";
    }
    auto q = ParseQuery(text, &db.interner());
    if (q.ok()) {
      // Anything accepted must round trip through the printer.
      std::string printed = ToString(**q, db.interner());
      auto again = ParseQuery(printed, &db.interner());
      ASSERT_TRUE(again.ok()) << "accepted '" << text
                              << "' but rejected its printout '" << printed
                              << "': " << again.status().ToString();
      EXPECT_EQ(printed, ToString(**again, db.interner()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParserFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class IoFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IoFuzzTest, MangledDatabasesNeverCrash) {
  // Serialize a real database, then mangle it line-wise.
  EventDatabase db;
  AddRelation(&db, "Hall", {{"h1"}});
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.4}, {"b", 0.3}}, {{"a", 1.0}}});
  AddMarkovStream(&db, "At", "Sue", {"a", "b"}, 3, 0.8);
  std::stringstream ss;
  ASSERT_OK(WriteDatabase(db, &ss));
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(ss, line)) lines.push_back(line);

  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::string> mangled = lines;
    switch (rng.Below(4)) {
      case 0:  // drop a random line
        mangled.erase(mangled.begin() + rng.Below(mangled.size()));
        break;
      case 1:  // duplicate a random line
        mangled.insert(mangled.begin() + rng.Below(mangled.size()),
                       mangled[rng.Below(mangled.size())]);
        break;
      case 2: {  // truncate a random line
        std::string& l = mangled[rng.Below(mangled.size())];
        if (!l.empty()) l.resize(rng.Below(l.size()));
        break;
      }
      case 3: {  // shuffle two lines
        size_t i = rng.Below(mangled.size());
        size_t j = rng.Below(mangled.size());
        std::swap(mangled[i], mangled[j]);
        break;
      }
    }
    std::string text;
    for (const auto& l : mangled) text += l + "\n";
    std::stringstream in(text);
    auto result = ReadDatabase(&in);  // must not crash; ok or error both fine
    if (result.ok()) {
      EXPECT_OK((*result)->Validate());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IoFuzzTest,
                         ::testing::Values(11, 12, 13, 14));

TEST(RobustnessTest, DeepQueriesParseWithoutOverflow) {
  EventDatabase db;
  // 200 chained subgoals: the parser is iterative over ';'.
  std::string text = "R('k', x0)";
  for (int i = 1; i < 200; ++i) {
    text += "; R('k', x" + std::to_string(i) + ")";
  }
  auto q = ParseQuery(text, &db.interner());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(Goals(**q).size(), 200u);
  // ...but the automaton caps at 31 subgoals with a clean error.
  auto nq = Normalize(**q);
  ASSERT_OK(nq.status());
  EXPECT_FALSE(QueryNfa::Build(*nq).ok());
}

TEST(RobustnessTest, HugeConditionsParse) {
  EventDatabase db;
  std::string cond = "x = 'v0'";
  for (int i = 1; i < 300; ++i) {
    cond += (i % 2 ? " OR x = 'v" : " AND x = 'v") + std::to_string(i) + "'";
  }
  auto q = ParseQuery("R('k', x : " + cond + ")", &db.interner());
  ASSERT_TRUE(q.ok());
}

}  // namespace
}  // namespace lahar
