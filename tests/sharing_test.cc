// Cross-query shared evaluation (docs/SHARING.md): the canonicalizing
// rewrite and SharedPlanIndex in the analysis layer, the registry's
// exact-text prepared-plan dedup and sharing pool, group rebuilds under
// register/unregister churn, and end-to-end equivalence — shared mode must
// publish probabilities and checkpoint bytes bit-identical to the
// `unshared` verification mode.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "analysis/plan.h"
#include "analysis/prepared.h"
#include "engine/streaming.h"
#include "runtime/executor.h"
#include "runtime/registry.h"
#include "runtime/replay.h"
#include "sim/scenarios.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddRelation;
using ::lahar::testing::StepDist;
using namespace std::chrono_literals;

// A small archived database: two tags wandering over three rooms, plus the
// Room/Lounge relations the queries predicate on.
std::unique_ptr<EventDatabase> SmallDb(Timestamp horizon) {
  auto db = std::make_unique<EventDatabase>();
  AddRelation(db.get(), "Room", {{"kitchen"}, {"lounge"}, {"office"}});
  AddRelation(db.get(), "Lounge", {{"lounge"}});
  for (const std::string& tag : {"tag1", "tag2"}) {
    std::vector<StepDist> steps;
    for (Timestamp t = 0; t < horizon; ++t) {
      // Deterministically varied but non-trivial marginals.
      double p = 0.1 + 0.8 * ((t * 7 + (tag == "tag1" ? 3 : 5)) % 10) / 10.0;
      steps.push_back({{"kitchen", p * 0.5},
                       {"lounge", p * 0.3},
                       {"office", (1.0 - p) * 0.6}});
    }
    AddIndependentStream(db.get(), "At", tag, steps);
  }
  return db;
}

std::string KeyOf(EventDatabase* db, const std::string& text) {
  auto p = PrepareQuery(text, db);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << " for " << text;
  return p.ok() ? CanonicalQueryKey(p->normalized) : std::string();
}

TEST(CanonicalKeyTest, AlphaVariantsHashEqual) {
  auto db = SmallDb(4);
  EXPECT_EQ(KeyOf(db.get(), "At('tag1', l : Room(l))"),
            KeyOf(db.get(), "At('tag1', m : Room(m))"));
  EXPECT_EQ(KeyOf(db.get(), "At('tag1', a : Room(a)); At('tag1', b : Lounge(b))"),
            KeyOf(db.get(), "At('tag1', x : Room(x)); At('tag1', y : Lounge(y))"));
  // Different constants and different predicates are different structures.
  EXPECT_NE(KeyOf(db.get(), "At('tag1', l : Room(l))"),
            KeyOf(db.get(), "At('tag2', l : Room(l))"));
  EXPECT_NE(KeyOf(db.get(), "At('tag1', l : Room(l))"),
            KeyOf(db.get(), "At('tag1', l : Lounge(l))"));
}

TEST(CanonicalKeyTest, PredicateSpellingOrderHashesEqual) {
  auto db = SmallDb(4);
  // Conjunct order within a WHERE clause is canonicalized away.
  EXPECT_EQ(
      KeyOf(db.get(),
            "(At('tag1', l1); At('tag1', l2)) WHERE Room(l1) AND Lounge(l2)"),
      KeyOf(db.get(),
            "(At('tag1', a); At('tag1', b)) WHERE Lounge(b) AND Room(a)"));
  // Comparisons are orientation-normalized.
  EXPECT_EQ(KeyOf(db.get(), "(At('tag1', l1); At('tag1', l2)) WHERE l1 = l2"),
            KeyOf(db.get(), "(At('tag1', l1); At('tag1', l2)) WHERE l2 = l1"));
}

TEST(CanonicalKeyTest, PrefixKeysAlignAcrossQueries) {
  auto db = SmallDb(4);
  auto p1 = PrepareQuery("At('tag1', l : Room(l))", db.get());
  auto p2 = PrepareQuery(
      "At('tag1', a : Room(a)); At('tag1', b : Lounge(b))", db.get());
  ASSERT_OK(p1.status());
  ASSERT_OK(p2.status());
  auto k1 = CanonicalPrefixKeys(p1->normalized);
  auto k2 = CanonicalPrefixKeys(p2->normalized);
  ASSERT_EQ(k1.size(), 1u);
  ASSERT_EQ(k2.size(), 2u);
  // The 2-subgoal query's first prefix is the 1-subgoal query: a shared
  // automaton prefix of length 1.
  EXPECT_EQ(k1[0], k2[0]);
  EXPECT_NE(k2[0], k2[1]);
}

TEST(SharedPlanIndexTest, GroupsOverlapAndDeclines) {
  auto db = SmallDb(4);
  auto add = [&](SharedPlanIndex* index, uint64_t id,
                 const std::string& text) {
    auto p = PrepareQuery(text, db.get());
    ASSERT_TRUE(p.ok()) << p.status().ToString() << " for " << text;
    index->Add(id, AnalyzeSharing(p->normalized, p->classification));
  };
  SharedPlanIndex index;
  add(&index, 0, "At('tag1', l : Room(l))");
  add(&index, 1, "At('tag1', m : Room(m))");  // alpha-variant of 0
  add(&index, 2, "At('tag1', a : Room(a)); At('tag1', b : Lounge(b))");
  add(&index, 3, "At('tag2', l : Lounge(l))");
  EXPECT_EQ(index.num_queries(), 4u);
  EXPECT_EQ(index.num_groups(), 1u);  // {0, 1}
  auto groups = index.Groups();
  bool found = false;
  for (const auto& g : groups) {
    if (g.members.size() < 2) continue;
    EXPECT_EQ(g.members, (std::vector<uint64_t>{0, 1}));
    found = true;
  }
  EXPECT_TRUE(found);
  // Query 2 extends query 0's automaton by one subgoal.
  auto overlap = index.LongestPrefixOverlap(2);
  EXPECT_EQ(overlap.subgoals, 1u);
  EXPECT_TRUE(overlap.with == 0 || overlap.with == 1);
  EXPECT_GE(index.NumAlphabetPeers(2), 2u);
  index.Remove(1);
  EXPECT_EQ(index.num_groups(), 0u);

  // An Unsafe query is indexed but declined for runtime state sharing.
  add(&index, 9, "(At(x, l1); At(y, l2)) WHERE l1 = l2");
  const QuerySharingInfo* info = index.Find(9);
  ASSERT_NE(info, nullptr);
  EXPECT_FALSE(info->sharable);
  EXPECT_FALSE(info->decline_reason.empty());
}

// Satellite regression: registering the exact same query text twice must
// not reparse/reclassify — the second registration reuses the cached
// prepared plan, gets a distinct QueryId, and shares compiled kernels.
TEST(RegistryDedupTest, ExactTextReregistrationReusesPreparedPlan) {
  auto db = SmallDb(6);
  QueryRegistry registry(db.get());
  const std::string text = "At('tag1', l : Room(l))";
  auto id1 = registry.Register(text, 0);
  ASSERT_OK(id1.status());
  EXPECT_EQ(registry.prepared_dedup_hits(), 0u);
  auto id2 = registry.Register(text, 0);
  ASSERT_OK(id2.status());
  EXPECT_NE(*id1, *id2);  // distinct standing queries...
  EXPECT_EQ(registry.prepared_dedup_hits(), 1u);  // ...same prepared plan
  // Structurally identical chains landed in one sharing group, and the
  // kernel compiled exactly once across both sessions.
  EXPECT_EQ(registry.num_sharing_groups(), 1u);
  EXPECT_EQ(registry.shared_kernels().stats().misses, 1u);
  EXPECT_GE(registry.shared_kernels().stats().hits, 1u);
  // Dropping one holder keeps the plan usable for the survivor and for
  // later re-registrations; dropping both releases it.
  ASSERT_OK(registry.Unregister(*id1));
  EXPECT_EQ(registry.num_sharing_groups(), 0u);
  auto id3 = registry.Register(text, 0);
  ASSERT_OK(id3.status());
  EXPECT_EQ(registry.prepared_dedup_hits(), 2u);
  ASSERT_OK(registry.Unregister(*id2));
  ASSERT_OK(registry.Unregister(*id3));
  EXPECT_EQ(registry.size(), 0u);
}

// Registry-level churn: groups materialize at the second member, dissolve
// when the reader count drops below two (the survivor resumes private
// stepping from the shared state), and re-materialize when a new member
// arrives mid-stream — with every published probability equal to a private
// unshared session throughout.
TEST(RegistrySharingTest, ChurnDissolvesAndRematerializesGroups) {
  constexpr Timestamp kHorizon = 8;
  auto db = SmallDb(kHorizon);
  const std::string q = "At('tag1', l : Room(l))";

  // Unshared ground truth.
  auto reference = StreamingSession::Create(db.get(), q);
  ASSERT_OK(reference.status());
  std::vector<double> expected;
  for (Timestamp t = 1; t <= kHorizon; ++t) {
    auto p = reference->Advance();
    ASSERT_OK(p.status());
    expected.push_back(*p);
  }

  auto db2 = SmallDb(kHorizon);
  QueryRegistry registry(db2.get());
  auto id1 = registry.Register("At('tag1', l : Room(l))", 0);
  auto id2 = registry.Register("At('tag1', m : Room(m))", 0);
  ASSERT_OK(id1.status());
  ASSERT_OK(id2.status());
  EXPECT_EQ(registry.num_sharing_groups(), 1u);
  StandingQuery* q1 = registry.Find(*id1);
  ASSERT_NE(q1, nullptr);
  EXPECT_EQ(q1->session->NumDelegatedUnits(), 1u);

  auto advance_all = [&](Timestamp t) {
    registry.AdvanceSharedUnits(t);
    for (const auto& sq : registry.queries()) {
      auto p = sq->session->Advance();
      ASSERT_OK(p.status());
      EXPECT_EQ(*p, expected[t - 1]) << "query " << sq->id << " at t=" << t;
    }
  };
  for (Timestamp t = 1; t <= 4; ++t) advance_all(t);

  // Drop to one reader: the group dissolves and the survivor carries the
  // shared state forward privately.
  ASSERT_OK(registry.Unregister(*id2));
  EXPECT_EQ(registry.num_sharing_groups(), 0u);
  EXPECT_EQ(q1->session->NumDelegatedUnits(), 0u);
  for (Timestamp t = 5; t <= 6; ++t) advance_all(t);

  // A new alpha-variant member arrives mid-stream: catch-up replay brings
  // it to the current tick and the group re-materializes.
  auto id3 = registry.Register("At('tag1', z : Room(z))", 6);
  ASSERT_OK(id3.status());
  EXPECT_EQ(registry.num_sharing_groups(), 1u);
  EXPECT_EQ(q1->session->NumDelegatedUnits(), 1u);
  for (Timestamp t = 7; t <= kHorizon; ++t) advance_all(t);
  uint64_t saved = registry.shared_steps_saved();
  EXPECT_GT(saved, 0u);
}

// Replays `archive` through a StreamRuntime with the given options and
// queries; returns every published TickResult plus a final checkpoint.
void RunArchive(const EventDatabase& archive, RuntimeOptions options,
                const std::vector<std::string>& queries,
                std::vector<QueryId>* ids, std::vector<TickResult>* results,
                RuntimeStats* stats, std::string* checkpoint) {
  auto live = CloneDeclarations(archive);
  ASSERT_OK(live.status());
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  StreamRuntime runtime(live->get(), options);
  for (const std::string& q : queries) {
    auto id = runtime.Register(q);
    ASSERT_TRUE(id.ok()) << id.status().ToString() << " for " << q;
    ids->push_back(*id);
  }
  runtime.SetTickCallback(
      [&](const TickResult& r) { results->push_back(r); });
  runtime.Start();
  std::thread producer([&] {
    for (TickBatch& b : *batches) {
      Status s = runtime.ingest().Push(std::move(b), 120000ms);
      EXPECT_OK(s);
    }
  });
  producer.join();
  ASSERT_TRUE(runtime.WaitForTick(archive.horizon(), 120000ms));
  *stats = runtime.Stats();
  auto snap = runtime.Checkpoint();
  ASSERT_OK(snap.status());
  *checkpoint = std::move(*snap);
  runtime.Stop();
}

// The acceptance scenario: 64 standing queries that are alpha-variants of
// one grounded chain execute that chain ONCE per tick; shared_steps_saved
// accounts for the other 63, and every published probability matches a
// sequential unshared session bit for bit.
TEST(SharingRuntimeTest, SixtyFourAlphaVariantsExecuteSharedChainOnce) {
  constexpr size_t kQueries = 64;
  constexpr Timestamp kHorizon = 64;
  auto archive = SmallDb(kHorizon);

  std::vector<std::string> queries;
  for (size_t i = 0; i < kQueries; ++i) {
    queries.push_back("At('tag1', v" + std::to_string(i) + " : Room(v" +
                      std::to_string(i) + "))");
  }
  auto reference = StreamingSession::Create(archive.get(), queries[0]);
  ASSERT_OK(reference.status());
  std::vector<double> expected;
  for (Timestamp t = 1; t <= kHorizon; ++t) {
    auto p = reference->Advance();
    ASSERT_OK(p.status());
    expected.push_back(*p);
  }

  RuntimeOptions options;
  options.num_threads = 2;
  std::vector<QueryId> ids;
  std::vector<TickResult> results;
  RuntimeStats stats;
  std::string checkpoint;
  RunArchive(*archive, options, queries, &ids, &results, &stats,
             &checkpoint);

  ASSERT_EQ(results.size(), kHorizon);
  for (size_t t = 0; t < results.size(); ++t) {
    ASSERT_EQ(results[t].probs.size(), kQueries);
    for (QueryId id : ids) {
      const double* p = results[t].Find(id);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(*p, expected[t]) << "q" << id << " at t=" << t + 1;
    }
  }
  // One group of 64 readers; its chain stepped kHorizon times total, saving
  // the other 63 sessions' steps every tick.
  EXPECT_EQ(stats.sharing_groups, 1u);
  EXPECT_EQ(stats.shared_steps_executed, kHorizon);
  EXPECT_EQ(stats.shared_steps_saved, (kQueries - 1) * kHorizon);
  // The kernel compiled once for all 64 sessions.
  EXPECT_EQ(stats.kernel_cache_misses, 1u);
  EXPECT_GE(stats.kernel_cache_hits, kQueries - 1);
  for (const QueryStats& qs : stats.queries) {
    EXPECT_EQ(qs.shared_units, 1u) << "q" << qs.id;
    EXPECT_EQ(qs.errors, 0u) << qs.last_error;
  }
}

// Shared evaluation is an optimization, not a semantics change: with the
// same queries (regular and extended, with duplicates) the shared and
// `unshared` modes publish bit-identical probabilities and produce
// byte-identical checkpoints.
TEST(SharingRuntimeTest, SharedAndUnsharedAreBitIdentical) {
  constexpr size_t kTags = 3;
  constexpr Timestamp kHorizon = 96;
  PipelineConfig config;
  config.num_particles = 32;
  auto scenario = RandomWalkScenario(kTags, kHorizon, /*seed=*/2008, config);
  ASSERT_OK(scenario.status());
  auto archive = scenario->BuildDatabase(StreamKind::kFiltered);
  ASSERT_OK(archive.status());

  const std::vector<std::string> queries = {
      "At('tag1', l : Room(l))",
      "At('tag1', m : Room(m))",  // alpha-variant duplicate
      "At('tag2', l : Hallway(l))",
      "At(x, l : Room(l))",  // extended: chains overlap the grounded ones
      "At(x, l1 : NotRoom(l1)); At(x, l2 : Room(l2))",
      "At(y, l1 : NotRoom(l1)); At(y, l2 : Room(l2))",  // alpha-variant
      "At('tag1', l : Room(l))",  // exact-text duplicate
  };

  RuntimeOptions shared_options;
  shared_options.num_threads = 4;
  RuntimeOptions unshared_options = shared_options;
  unshared_options.sharing.enabled = false;

  std::vector<QueryId> shared_ids, unshared_ids;
  std::vector<TickResult> shared_results, unshared_results;
  RuntimeStats shared_stats, unshared_stats;
  std::string shared_ckpt, unshared_ckpt;
  RunArchive(**archive, shared_options, queries, &shared_ids,
             &shared_results, &shared_stats, &shared_ckpt);
  RunArchive(**archive, unshared_options, queries, &unshared_ids,
             &unshared_results, &unshared_stats, &unshared_ckpt);

  ASSERT_EQ(shared_ids, unshared_ids);
  ASSERT_EQ(shared_results.size(), kHorizon);
  ASSERT_EQ(unshared_results.size(), kHorizon);
  for (size_t t = 0; t < kHorizon; ++t) {
    ASSERT_EQ(shared_results[t].probs.size(),
              unshared_results[t].probs.size());
    for (size_t i = 0; i < shared_results[t].probs.size(); ++i) {
      EXPECT_EQ(shared_results[t].probs[i].first,
                unshared_results[t].probs[i].first);
      // Bit-identity, not tolerance: EXPECT_EQ on the doubles.
      EXPECT_EQ(shared_results[t].probs[i].second,
                unshared_results[t].probs[i].second)
          << "query " << shared_results[t].probs[i].first << " at t="
          << t + 1;
    }
  }
  // Checkpoints byte-identical: a delegated chain serializes the shared
  // unit's state, which equals the private chain's.
  EXPECT_EQ(shared_ckpt, unshared_ckpt);
  // The modes differ only in the counters.
  EXPECT_GT(shared_stats.sharing_groups, 0u);
  EXPECT_GT(shared_stats.shared_steps_saved, 0u);
  EXPECT_EQ(unshared_stats.sharing_groups, 0u);
  EXPECT_EQ(unshared_stats.shared_steps_saved, 0u);
}

// Satellite: the sharing counters reach the serving surfaces — ToJson (the
// body of the net kStats reply) and ToString (the CLI's stats dump) carry
// the new fields.
TEST(SharingStatsTest, JsonAndTextCarrySharingFields) {
  constexpr Timestamp kHorizon = 8;
  auto archive = SmallDb(kHorizon);
  const std::vector<std::string> queries = {
      "At('tag1', l : Room(l))",
      "At('tag1', l : Room(l))",  // exact-text duplicate: dedup + sharing
  };
  RuntimeOptions options;
  options.num_threads = 1;
  std::vector<QueryId> ids;
  std::vector<TickResult> results;
  RuntimeStats stats;
  std::string checkpoint;
  RunArchive(*archive, options, queries, &ids, &results, &stats, &checkpoint);

  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"sharing_groups\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shared_steps_executed\":8"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"shared_steps_saved\":8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"prepared_dedup_hits\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"kernel_cache_hits\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kernel_cache_misses\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"kernel_cache_entries\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"sharing_fanout_hist\":["), std::string::npos)
      << json;
  // Per-query fields.
  EXPECT_NE(json.find("\"shared_units\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kernel_hits\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kernel_misses\":"), std::string::npos) << json;

  const std::string text = stats.ToString();
  EXPECT_NE(text.find("sharing: groups=1"), std::string::npos) << text;
  EXPECT_NE(text.find("steps_saved=8"), std::string::npos) << text;
}

}  // namespace
}  // namespace lahar
