#include <gtest/gtest.h>

#include <set>

#include "sim/scenarios.h"
#include "test_util.h"

namespace lahar {
namespace {

TEST(FloorplanTest, BuildingHasExpectedInventory) {
  Floorplan fp = Floorplan::Building(2, 10);
  EXPECT_EQ(fp.OfType(RoomType::kOffice).size(), 20u);
  EXPECT_EQ(fp.OfType(RoomType::kCoffeeRoom).size(), 2u);
  EXPECT_EQ(fp.OfType(RoomType::kLectureRoom).size(), 2u);
  EXPECT_EQ(fp.OfType(RoomType::kLobby).size(), 1u);
  EXPECT_GT(fp.num_antennas(), 2u);
  // Offices are never sensed: the granularity mismatch.
  for (uint32_t office : fp.OfType(RoomType::kOffice)) {
    EXPECT_EQ(fp.location(office).antenna, -1);
  }
}

TEST(FloorplanTest, GraphIsConnected) {
  Floorplan fp = Floorplan::Building(2, 10);
  for (uint32_t i = 0; i < fp.num_locations(); ++i) {
    EXPECT_FALSE(ShortestPath(fp, 0, i).empty()) << fp.location(i).name;
  }
}

TEST(FloorplanTest, MotionModelIsStochastic) {
  Floorplan fp = Floorplan::Building(2, 6);
  Matrix m = fp.MotionModel(0.3, 0.75);
  for (size_t r = 0; r < m.rows(); ++r) {
    double total = 0;
    for (size_t c = 0; c < m.cols(); ++c) total += m.At(r, c);
    EXPECT_NEAR(total, 1.0, 1e-9) << fp.location(r).name;
  }
  // Rooms are stickier than hallways.
  uint32_t office = fp.OfType(RoomType::kOffice)[0];
  uint32_t hall = fp.OfType(RoomType::kHallway)[0];
  EXPECT_GT(m.At(office, office), m.At(hall, hall));
}

TEST(SensorTest, LikelihoodFavorsTrueLocation) {
  Floorplan fp = Floorplan::Building(1, 6);
  RfidSensorModel sensor(&fp, 0.8, 0.05);
  uint32_t hall = fp.OfType(RoomType::kHallway)[0];
  ASSERT_GE(fp.location(hall).antenna, 0);
  Reading reading = {fp.location(hall).antenna};
  std::vector<double> like = sensor.Likelihood(reading);
  // The sensed hallway explains the reading better than anywhere else.
  for (uint32_t i = 0; i < fp.num_locations(); ++i) {
    if (i != hall) {
      EXPECT_GE(like[hall], like[i]);
    }
  }
}

TEST(SensorTest, EmptyReadingIsAmbiguous) {
  Floorplan fp = Floorplan::Building(1, 6);
  RfidSensorModel sensor(&fp, 0.8, 0.05);
  std::vector<double> like = sensor.Likelihood({});
  // No reading: unsensed rooms are more likely than a covered hallway.
  uint32_t office = fp.OfType(RoomType::kOffice)[0];
  uint32_t hall = fp.OfType(RoomType::kHallway)[0];
  EXPECT_GT(like[office], like[hall]);
  for (double l : like) EXPECT_GT(l, 0.0);
}

TEST(SensorTest, SampleRespectsReadRate) {
  Floorplan fp = Floorplan::Building(1, 6);
  RfidSensorModel sensor(&fp, 0.6, 0.0);
  uint32_t hall = fp.OfType(RoomType::kHallway)[0];
  Rng rng(4);
  int fired = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    fired += sensor.Sample(hall, &rng).empty() ? 0 : 1;
  }
  EXPECT_NEAR(fired / double(kTrials), 0.6, 0.02);
}

TEST(TrajectoryTest, ShortestPathEndpoints) {
  Floorplan fp = Floorplan::Building(1, 8);
  uint32_t office = fp.OfType(RoomType::kOffice)[0];
  uint32_t coffee = fp.OfType(RoomType::kCoffeeRoom)[0];
  auto path = ShortestPath(fp, office, coffee);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), office);
  EXPECT_EQ(path.back(), coffee);
  // Consecutive steps are adjacent.
  for (size_t i = 1; i < path.size(); ++i) {
    const auto& n = fp.location(path[i - 1]).neighbors;
    EXPECT_NE(std::find(n.begin(), n.end(), path[i]), n.end());
  }
}

TEST(TrajectoryTest, OfficeWorkerVisitsCoffeeRoom) {
  Floorplan fp = Floorplan::Building(1, 8);
  uint32_t office = fp.OfType(RoomType::kOffice)[1];
  uint32_t coffee = fp.OfType(RoomType::kCoffeeRoom)[0];
  Rng rng(11);
  TruePath path = OfficeWorkerPath(fp, office, 200, &rng);
  std::set<uint32_t> visited(path.begin() + 1, path.end());
  EXPECT_TRUE(visited.count(office));
  EXPECT_TRUE(visited.count(coffee));
  // Movement is along edges.
  for (Timestamp t = 2; t < path.size(); ++t) {
    if (path[t] == path[t - 1]) continue;
    const auto& n = fp.location(path[t - 1]).neighbors;
    EXPECT_NE(std::find(n.begin(), n.end(), path[t]), n.end()) << t;
  }
}

TEST(TrajectoryTest, EnterRoomAndStay) {
  Floorplan fp = Floorplan::Corridor(6);
  uint32_t room = fp.Find("room4");
  TruePath path = EnterRoomAndStayPath(fp, fp.Find("hall1"), room, 20);
  EXPECT_EQ(path[1], fp.Find("hall1"));
  EXPECT_EQ(path[20], room);
  EXPECT_EQ(path[19], room);
}

TEST(PipelineTest, StreamsValidateAndCoverHorizon) {
  auto scenario = OfficeScenario(2, 30, 77);
  ASSERT_OK(scenario.status());
  for (StreamKind kind :
       {StreamKind::kFiltered, StreamKind::kExactFiltered,
        StreamKind::kSmoothed, StreamKind::kSmoothedIndependent,
        StreamKind::kTruth}) {
    auto db = scenario->BuildDatabase(kind);
    ASSERT_OK(db.status());
    EXPECT_OK((*db)->Validate());
    EXPECT_EQ((*db)->num_streams(), 2u);
    EXPECT_EQ((*db)->horizon(), 30u);
  }
}

TEST(PipelineTest, SmoothedBeatsFilteredAtTrackingTruth) {
  // Smoothing uses future evidence, so on model-matched trajectories it
  // puts more posterior mass on the true path than forward filtering.
  // Averaged over several walkers to keep the comparison robust.
  auto scenario = RandomWalkScenario(4, 80, 123);
  ASSERT_OK(scenario.status());
  auto filtered_db = scenario->BuildDatabase(StreamKind::kExactFiltered);
  auto smoothed_db = scenario->BuildDatabase(StreamKind::kSmoothed);
  ASSERT_OK(filtered_db.status());
  ASSERT_OK(smoothed_db.status());
  auto mass_on_truth = [&](const EventDatabase& db) {
    double total = 0;
    size_t steps = 0;
    for (StreamId id = 0; id < db.num_streams(); ++id) {
      const Stream& s = db.stream(id);
      const TagTrace& tag = scenario->tags[id];
      for (Timestamp t = 1; t <= s.horizon(); ++t, ++steps) {
        total += s.ProbAt(t, tag.true_path[t] + 1);
      }
    }
    return total / static_cast<double>(steps);
  };
  double filtered = mass_on_truth(**filtered_db);
  double smoothed = mass_on_truth(**smoothed_db);
  EXPECT_GT(smoothed, filtered);
}

TEST(PipelineTest, TruthStreamIsCertain) {
  auto scenario = OfficeScenario(1, 20, 9);
  ASSERT_OK(scenario.status());
  auto db = scenario->BuildDatabase(StreamKind::kTruth);
  ASSERT_OK(db.status());
  const Stream& s = (*db)->stream(0);
  for (Timestamp t = 1; t <= s.horizon(); ++t) {
    EXPECT_NEAR(s.ProbAt(t, scenario->tags[0].true_path[t] + 1), 1.0, 1e-12);
  }
}

TEST(PipelineTest, RelationsReflectFloorplan) {
  auto scenario = OfficeScenario(1, 10, 5);
  ASSERT_OK(scenario.status());
  auto db = scenario->BuildDatabase(StreamKind::kTruth);
  ASSERT_OK(db.status());
  const Relation* hallway =
      (*db)->FindRelation((*db)->interner().Intern("Hallway"));
  const Relation* notroom =
      (*db)->FindRelation((*db)->interner().Intern("NotRoom"));
  const Relation* room = (*db)->FindRelation((*db)->interner().Intern("Room"));
  ASSERT_NE(hallway, nullptr);
  ASSERT_NE(notroom, nullptr);
  ASSERT_NE(room, nullptr);
  EXPECT_EQ(hallway->size() + 1, notroom->size());  // + lobby
  EXPECT_EQ(notroom->size() + room->size(),
            scenario->floorplan->num_locations());
}

TEST(PipelineTest, ScenariosAreDeterministicPerSeed) {
  auto a = RandomWalkScenario(3, 15, 42);
  auto b = RandomWalkScenario(3, 15, 42);
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  for (size_t i = 0; i < a->tags.size(); ++i) {
    EXPECT_EQ(a->tags[i].true_path, b->tags[i].true_path);
    EXPECT_EQ(a->tags[i].readings.size(), b->tags[i].readings.size());
  }
}

}  // namespace
}  // namespace lahar
