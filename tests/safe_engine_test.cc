#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "analysis/plan.h"
#include "engine/reference.h"
#include "engine/safe_engine.h"
#include "query/printer.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;
using ::lahar::testing::AddRelation;
using ::lahar::testing::MustParse;

void ExpectMatchesBruteForce(EventDatabase* db, const std::string& text,
                             double tol = 1e-9) {
  QueryPtr q = MustParse(db, text);
  ASSERT_NE(q, nullptr);
  ASSERT_OK(ValidateQuery(*q, *db));
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto engine = SafePlanEngine::Create(*nq, *db);
  ASSERT_OK(engine.status());
  auto got = engine->Run();
  ASSERT_OK(got.status());
  auto want = BruteForceProbabilities(*q, *db);
  ASSERT_OK(want.status());
  for (size_t t = 1; t < got->size(); ++t) {
    EXPECT_NEAR((*got)[t], (*want)[t], tol) << text << " at t=" << t;
  }
}

// Declares R/S/T plus a two-key Carries schema.
void AddCarriesSchema(EventDatabase* db) {
  EventSchema carries;
  carries.type = db->interner().Intern("Carries");
  carries.attr_names = {db->interner().Intern("person"),
                        db->interner().Intern("object"),
                        db->interner().Intern("loc")};
  carries.num_key_attrs = 2;
  ASSERT_OK(db->DeclareSchema(carries));
}

StreamId AddCarriesStream(EventDatabase* db, const std::string& person,
                          const std::string& object,
                          const std::vector<lahar::testing::StepDist>& steps) {
  Stream s(db->interner().Intern("Carries"), {db->Sym(person), db->Sym(object)},
           1, static_cast<Timestamp>(steps.size()), false);
  for (const auto& step : steps) {
    for (const auto& [name, p] : step) s.InternTuple({db->Sym(name)});
  }
  for (size_t i = 0; i < steps.size(); ++i) {
    std::vector<double> dist(s.domain_size(), 0.0);
    double total = 0;
    for (const auto& [name, p] : steps[i]) {
      dist[s.LookupTuple({db->Sym(name)})] += p;
      total += p;
    }
    dist[kBottom] = 1.0 - total;
    EXPECT_OK(s.SetMarginal(static_cast<Timestamp>(i + 1), dist));
  }
  auto id = db->AddStream(std::move(s));
  EXPECT_TRUE(id.ok());
  return *id;
}

TEST(SafePlanTest, Fig6PlanShape) {
  // Ex. 3.17: q = R(x); S(x); T('a', y) compiles to
  // seq(pi_-x(reg<x>(R(x); S(x))), T('a', y)).
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 1.0}}});
  AddIndependentStream(&db, "S", "k1", {{{"u", 1.0}}});
  AddIndependentStream(&db, "T", "a", {{{"u", 1.0}}});
  QueryPtr q = MustParse(&db, "R(x, u1); S(x, u2); T('a', y)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto plan = CompileSafePlan(*nq, db);
  ASSERT_OK(plan.status());
  EXPECT_EQ(PlanToString(**plan, db.interner()),
            "seq(pi_-x(reg<x>(R(x, u1); S(x, u2))), T('a', y))");
}

TEST(SafePlanTest, UnsafeQueriesRejected) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 1.0}}});
  AddIndependentStream(&db, "S", "k1", {{{"u", 1.0}}});
  AddIndependentStream(&db, "T", "k1", {{{"u", 1.0}}});
  for (const char* text : {
           "(R(k1, x); S(k2, y)) WHERE x = y",        // h1: non-local
           "R(z1, z2); S(x, w1); T(x, w2)",           // h3
           "R(x, w1); S(z1, z2); T(x, w2)",           // h4
       }) {
    QueryPtr q = MustParse(&db, text);
    auto nq = Normalize(*q);
    ASSERT_OK(nq.status());
    auto plan = CompileSafePlan(*nq, db);
    EXPECT_FALSE(plan.ok()) << text;
    EXPECT_EQ(plan.status().code(), StatusCode::kUnsafeQuery) << text;
  }
}

TEST(SafePlanTest, OverlappingSubgoalsNeedDistinctKeysOption) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 1.0}}});
  AddIndependentStream(&db, "At", "Sue", {{{"a", 1.0}}});
  QueryPtr q = MustParse(&db, "At(p, l1); At(p, l2); At(q, l3)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  EXPECT_EQ(Classify(*nq, db).query_class, QueryClass::kSafe);
  // Strict mode: At(q, l3) can unify with the At(p, .) subgoals.
  EXPECT_FALSE(CompileSafePlan(*nq, db).ok());
  PlanOptions relaxed;
  relaxed.assume_distinct_keys = true;
  auto plan = CompileSafePlan(*nq, db, relaxed);
  ASSERT_OK(plan.status());
  // The projection sits OUTSIDE the seq so each grounding of p can exclude
  // its own streams from the witness computation.
  EXPECT_EQ(PlanToString(**plan, db.interner()),
            "pi_-p(seq(reg<p>(At(p, l1); At(p, l2)), At(q, l3)))");
}

TEST(SafeEngineTest, SeqOverDisjointTypesMatchesBruteForce) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1",
                       {{{"u", 0.6}}, {{"u", 0.3}}, {{"u", 0.5}}});
  AddIndependentStream(&db, "S", "k1",
                       {{{"v", 0.4}}, {{"v", 0.7}}, {{"v", 0.2}}});
  AddIndependentStream(&db, "T", "a",
                       {{{"w", 0.5}}, {{"w", 0.6}}, {{"w", 0.4}}});
  ExpectMatchesBruteForce(&db, "R(x, u1); S(x, u2); T('a', y)");
}

TEST(SafeEngineTest, MultipleBindingsProject) {
  EventDatabase db;
  for (const char* k : {"k1", "k2"}) {
    AddIndependentStream(&db, "R", k, {{{"u", 0.5}}, {{"u", 0.4}}});
    AddIndependentStream(&db, "S", k, {{{"v", 0.6}}, {{"v", 0.3}}});
  }
  AddIndependentStream(&db, "T", "a", {{{"w", 0.5}}, {{"w", 0.7}}});
  ExpectMatchesBruteForce(&db, "R(x, u1); S(x, u2); T('a', y)");
}

TEST(SafeEngineTest, WitnessAcrossMultipleStreams) {
  // Two T streams can provide the witness; their disjunction matters.
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 0.7}}, {}, {}});
  AddIndependentStream(&db, "S", "k1", {{}, {{"v", 0.8}}, {}});
  AddIndependentStream(&db, "T", "a", {{}, {}, {{"w", 0.5}}});
  AddIndependentStream(&db, "T", "b", {{}, {}, {{"w", 0.5}}});
  ExpectMatchesBruteForce(&db, "R(x, u1); S(x, u2); T(z, y)");
}

TEST(SafeEngineTest, PrecursorConsumesTheMatch) {
  // The Fig. 7 subtlety: a T event *before* the interval can consume the
  // R;S prefix, so q is NOT simply "prefix before some witness".
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 1.0}}, {}, {}, {}});
  AddIndependentStream(&db, "S", "k1", {{}, {{"v", 1.0}}, {}, {}});
  // T fires at t=3 with prob 0.5 (precursor for t=4) and t=4 surely.
  AddIndependentStream(&db, "T", "a", {{}, {}, {{"w", 0.5}}, {{"w", 1.0}}});
  QueryPtr q = MustParse(&db, "R(x, u1); S(x, u2); T('a', y)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto engine = SafePlanEngine::Create(*nq, db);
  ASSERT_OK(engine.status());
  auto probs = engine->Run();
  ASSERT_OK(probs.status());
  // Prefix completes at t=2. q@3 iff T@3 (0.5); q@4 iff no T@3 (0.5).
  EXPECT_NEAR((*probs)[3], 0.5, 1e-12);
  EXPECT_NEAR((*probs)[4], 0.5, 1e-12);
  ExpectMatchesBruteForce(&db, "R(x, u1); S(x, u2); T('a', y)");
}

TEST(SafeEngineTest, QtalkWithKleeneInRegLeaf) {
  EventDatabase db;
  AddCarriesSchema(&db);
  AddRelation(&db, "Lecture", {{"hall"}});
  AddCarriesStream(&db, "Joe", "laptop",
                   {{{"office", 0.8}}, {{"corr", 0.6}}, {{"corr", 0.5}}});
  AddIndependentStream(&db, "At", "Joe", {{}, {}, {{"hall", 0.7}}});
  ExpectMatchesBruteForce(
      &db, "Carries(x, y, z); Carries(x, y, w)+{x, y}; At(x, u : Lecture(u))");
}

TEST(SafeEngineTest, IntervalProbIsMonotone) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 0.5}}, {{"u", 0.5}}, {}});
  AddIndependentStream(&db, "S", "k1", {{}, {{"v", 0.5}}, {{"v", 0.5}}});
  QueryPtr q = MustParse(&db, "R(x, u1); S(x, u2)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto engine = SafePlanEngine::Create(*nq, db);
  ASSERT_OK(engine.status());
  double prev = 0;
  for (Timestamp tf = 1; tf <= 3; ++tf) {
    auto p = engine->IntervalProb(1, tf);
    ASSERT_OK(p.status());
    EXPECT_GE(*p, prev - 1e-12);
    prev = *p;
  }
}

TEST(SafeEngineTest, MarkovianWitnessStreamRejected) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 0.5}}, {}, {}});
  AddIndependentStream(&db, "S", "k1", {{}, {{"v", 0.5}}, {}});
  AddMarkovStream(&db, "T", "a", {"w"}, 3, 0.9);
  QueryPtr q = MustParse(&db, "R(x, u1); S(x, u2); T('a', y)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto engine = SafePlanEngine::Create(*nq, db);
  EXPECT_FALSE(engine.ok());
}

TEST(SafeEngineTest, BlockingTrailingSelectionRejected) {
  // A localized trailing WHERE creates match-without-accept events, whose
  // blocking semantics the seq operator cannot decompose; the engine must
  // refuse rather than silently approximate.
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 0.5}}, {}});
  AddIndependentStream(&db, "S", "k1", {{}, {{"v", 0.5}}});
  AddIndependentStream(&db, "T", "a", {{}, {{"w", 0.4}, {"x", 0.3}}});
  QueryPtr q = MustParse(&db, "(R(p, u1); S(p, u2); T(z, y)) WHERE y = 'w'");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto engine = SafePlanEngine::Create(*nq, db);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kUnimplemented);
}

TEST(SafeEngineTest, NonBlockingTrailingSelectionAccepted) {
  // If matching events always satisfy the trailing selection, the m/a
  // distinction is vacuous and evaluation proceeds exactly.
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 0.5}}, {}});
  AddIndependentStream(&db, "S", "k1", {{}, {{"v", 0.5}}});
  AddIndependentStream(&db, "T", "a", {{}, {{"w", 0.4}}});
  ExpectMatchesBruteForce(&db, "(R(p, u1); S(p, u2); T(z, y)) WHERE y = 'w'");
}

TEST(SafeEngineTest, IntervalProbRejectsMalformedIntervals) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 0.5}}, {}});
  AddIndependentStream(&db, "S", "k1", {{}, {{"v", 0.5}}});
  QueryPtr q = MustParse(&db, "R(x, u1); S(x, u2)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto engine = SafePlanEngine::Create(*nq, db);
  ASSERT_OK(engine.status());
  // Timesteps are 1-based: ts = 0 is out of the model, not "from the start".
  auto zero = engine->IntervalProb(0, 2);
  EXPECT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);
  // Empty intervals (ts > tf) are a caller bug, not probability zero.
  auto empty = engine->IntervalProb(2, 1);
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  // The guard must not reject the degenerate-but-valid single-tick interval.
  EXPECT_OK(engine->IntervalProb(1, 1).status());
}

TEST(SafeEngineTest, CertainWitnessShortCircuitsExactly) {
  // Witness probability exactly 1.0: the no-witness suffix factor hits
  // bitwise 0.0, the point where the kernels' early-break conditions fire.
  // The answer must still be exact, and the sparse kernels must agree with
  // the dense reference bit for bit.
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 1.0}}, {}, {}, {}});
  AddIndependentStream(&db, "S", "k1", {{}, {{"v", 1.0}}, {}, {}});
  AddIndependentStream(&db, "T", "a", {{}, {}, {{"w", 1.0}}, {{"w", 0.5}}});
  ExpectMatchesBruteForce(&db, "R(x, u1); S(x, u2); T('a', y)");

  QueryPtr q = MustParse(&db, "R(x, u1); S(x, u2); T('a', y)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  PlanOptions reference;
  reference.safe.incremental = false;
  auto sparse = SafePlanEngine::Create(*nq, db);
  auto dense = SafePlanEngine::Create(*nq, db, reference);
  ASSERT_OK(sparse.status());
  ASSERT_OK(dense.status());
  auto got = sparse->Run();
  auto want = dense->Run();
  ASSERT_OK(got.status());
  ASSERT_OK(want.status());
  ASSERT_EQ(got->size(), want->size());
  for (size_t t = 1; t < got->size(); ++t) {
    EXPECT_EQ((*got)[t], (*want)[t]) << "t=" << t;
  }
  // The sure witness at t=3 consumes the completed prefix: q@3 is certain,
  // and q@4 is impossible (the precursor was already matched at t=3).
  EXPECT_EQ((*got)[3], 1.0);
  EXPECT_EQ((*got)[4], 0.0);
}

TEST(SafeEngineTest, AllBottomPrefixAtPrecursorBoundary) {
  // Every stream reports certain-bottom until the witness fires: the
  // precursor probability at the boundary is exactly 0.0 (not merely tiny),
  // so the kernels' zero-skip tests see real zeros on the inner edge.
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{}, {}, {}, {{"u", 0.9}}});
  AddIndependentStream(&db, "S", "k1", {{}, {}, {}, {}});
  AddIndependentStream(&db, "T", "a", {{}, {{"w", 0.7}}, {{"w", 0.4}}, {}});
  QueryPtr q = MustParse(&db, "R(x, u1); S(x, u2); T('a', y)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto engine = SafePlanEngine::Create(*nq, db);
  ASSERT_OK(engine.status());
  auto probs = engine->Run();
  ASSERT_OK(probs.status());
  // The R;S prefix never completes inside the horizon, so every tick is a
  // bitwise zero even while witnesses fire.
  for (size_t t = 1; t < probs->size(); ++t) {
    EXPECT_EQ((*probs)[t], 0.0) << "t=" << t;
  }
  ExpectMatchesBruteForce(&db, "R(x, u1); S(x, u2); T('a', y)");
}

TEST(SafeEngineTest, IncrementalMatchesReferenceOnIntervalGrid) {
  // The acceptance contract for the sparse kernels: EXPECT_EQ (bitwise, not
  // EXPECT_NEAR) against the dense Eq. (3) loops on Run() and on the full
  // (ts, tf) interval grid.
  EventDatabase db;
  for (const char* k : {"k1", "k2"}) {
    AddIndependentStream(
        &db, "R", k,
        {{{"u", 0.5}}, {{"u", 0.4}}, {}, {{"u", 0.6}}, {{"u", 0.2}}});
    AddIndependentStream(
        &db, "S", k,
        {{}, {{"v", 0.6}}, {{"v", 0.3}}, {{"v", 0.5}}, {{"v", 0.1}}});
  }
  AddIndependentStream(&db, "T", "a",
                       {{}, {{"w", 0.5}}, {}, {{"w", 0.4}}, {{"w", 0.9}}});
  QueryPtr q = MustParse(&db, "R(x, u1); S(x, u2); T('a', y)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  PlanOptions reference;
  reference.safe.incremental = false;
  auto sparse = SafePlanEngine::Create(*nq, db);
  auto dense = SafePlanEngine::Create(*nq, db, reference);
  ASSERT_OK(sparse.status());
  ASSERT_OK(dense.status());
  auto got = sparse->Run();
  auto want = dense->Run();
  ASSERT_OK(got.status());
  ASSERT_OK(want.status());
  for (size_t t = 1; t < got->size(); ++t) {
    EXPECT_EQ((*got)[t], (*want)[t]) << "t=" << t;
  }
  for (Timestamp ts = 1; ts <= 5; ++ts) {
    for (Timestamp tf = ts; tf <= 5; ++tf) {
      auto a = sparse->IntervalProb(ts, tf);
      auto b = dense->IntervalProb(ts, tf);
      ASSERT_OK(a.status());
      ASSERT_OK(b.status());
      EXPECT_EQ(*a, *b) << "[" << ts << ", " << tf << "]";
    }
  }
}

TEST(SafeEngineTest, TinyCapacitiesEvictButNeverChangeAnswers) {
  // Capacity knobs bound memory by trading recompute time; they must never
  // change a single bit of the output.
  EventDatabase db;
  std::vector<lahar::testing::StepDist> r1, r2, s1, s2, tt;
  for (size_t t = 0; t < 48; ++t) {
    double p = 0.2 + 0.01 * static_cast<double>(t % 37);
    r1.push_back({{"u", p}});
    r2.push_back({{"u", 1.0 - p}});
    s1.push_back({{"v", 0.5 * p}});
    s2.push_back({{"v", 0.9 - p}});
    tt.push_back(t % 5 == 3 ? lahar::testing::StepDist{{"w", 0.3}}
                            : lahar::testing::StepDist{});
  }
  AddIndependentStream(&db, "R", "k1", r1);
  AddIndependentStream(&db, "R", "k2", r2);
  AddIndependentStream(&db, "S", "k1", s1);
  AddIndependentStream(&db, "S", "k2", s2);
  AddIndependentStream(&db, "T", "a", tt);
  QueryPtr q = MustParse(&db, "R(x, u1); S(x, u2); T('a', y)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  PlanOptions tiny;
  tiny.safe.seq_memo_capacity = 4;
  tiny.safe.reg_row_capacity = 2;
  tiny.safe.reg_keyframe_interval = 8;
  auto capped = SafePlanEngine::Create(*nq, db, tiny);
  auto roomy = SafePlanEngine::Create(*nq, db);
  ASSERT_OK(capped.status());
  ASSERT_OK(roomy.status());
  auto got = capped->Run();
  auto want = roomy->Run();
  ASSERT_OK(got.status());
  ASSERT_OK(want.status());
  for (size_t t = 1; t < got->size(); ++t) {
    EXPECT_EQ((*got)[t], (*want)[t]) << "t=" << t;
  }
  SafeMemoStats stats = capped->MemoStats();
  EXPECT_GT(stats.memo_evictions, 0u);  // 48 diagonal keys through 4 slots
  EXPECT_LE(stats.memo_entries, 4u);
  EXPECT_GT(stats.row_evictions, 0u);
}

TEST(SafeEngineTest, DistinctKeysSemanticsExcludesOwnStream) {
  // Under assume_distinct_keys, At(q, l3) ranges over *other* tags.
  // With exactly two tags this is computable by hand.
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 1.0}}, {{"b", 1.0}}, {}});
  AddIndependentStream(&db, "At", "Sue", {{}, {}, {{"c", 0.5}}});
  QueryPtr q = MustParse(&db, "At(p, l1); At(p, l2); At(r, l3)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  PlanOptions options;
  options.assume_distinct_keys = true;
  auto engine = SafePlanEngine::Create(*nq, db, options);
  ASSERT_OK(engine.status());
  auto probs = engine->Run();
  ASSERT_OK(probs.status());
  // Joe's prefix completes at t=2; Sue provides the witness at t=3 w.p. 0.5.
  // (Sue's own prefix never completes: her stream has one event only.)
  EXPECT_NEAR((*probs)[3], 0.5, 1e-9);
  EXPECT_NEAR((*probs)[2], 0.0, 1e-9);
}

}  // namespace
}  // namespace lahar
