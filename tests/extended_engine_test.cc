#include <gtest/gtest.h>

#include "analysis/bindings.h"
#include "analysis/classify.h"
#include "engine/extended_engine.h"
#include "engine/reference.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;
using ::lahar::testing::AddRelation;
using ::lahar::testing::MustParse;

void ExpectMatchesBruteForce(EventDatabase* db, const std::string& text,
                             QueryClass expected_class, double tol = 1e-9) {
  QueryPtr q = MustParse(db, text);
  ASSERT_NE(q, nullptr);
  ASSERT_OK(ValidateQuery(*q, *db));
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  ASSERT_EQ(Classify(*nq, *db).query_class, expected_class) << text;
  auto engine = ExtendedRegularEngine::Create(*nq, *db);
  ASSERT_OK(engine.status());
  std::vector<double> got = engine->Run();
  auto want = BruteForceProbabilities(*q, *db);
  ASSERT_OK(want.status());
  for (size_t t = 1; t < got.size(); ++t) {
    EXPECT_NEAR(got[t], (*want)[t], tol) << text << " at t=" << t;
  }
}

TEST(ExtendedEngineTest, TwoPeopleSequence) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe",
                       {{{"a", 0.6}, {"b", 0.3}}, {{"b", 0.7}}});
  AddIndependentStream(&db, "At", "Sue",
                       {{{"a", 0.4}}, {{"b", 0.2}, {"a", 0.5}}});
  ExpectMatchesBruteForce(&db, "At(x, l1 : l1 = 'a'); At(x, l2 : l2 = 'b')",
                          QueryClass::kExtendedRegular);
}

TEST(ExtendedEngineTest, HallwayKleeneAcrossPeople) {
  EventDatabase db;
  AddRelation(&db, "Hall", {{"h"}});
  AddRelation(&db, "Person", {{"Joe"}, {"Sue"}});
  AddIndependentStream(&db, "At", "Joe",
                       {{{"a", 0.7}}, {{"h", 0.8}}, {{"c", 0.6}}});
  AddIndependentStream(&db, "At", "Sue",
                       {{{"a", 0.3}, {"h", 0.3}}, {{"h", 0.5}}, {{"c", 0.2}}});
  ExpectMatchesBruteForce(
      &db,
      "(At(x, l1 : l1 = 'a'); At(x, l2)+{x : Hall(l2)}; At(x, l3 : l3 = 'c')) "
      "WHERE Person(x)",
      QueryClass::kExtendedRegular);
}

TEST(ExtendedEngineTest, MarkovianPeople) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall"}, 3, 0.8);
  AddMarkovStream(&db, "At", "Sue", {"room", "hall"}, 3, 0.3);
  ExpectMatchesBruteForce(
      &db, "At(x, l1 : l1 = 'room'); At(x, l2 : l2 = 'room')",
      QueryClass::kExtendedRegular);
}

TEST(ExtendedEngineTest, ChainCountMatchesKeys) {
  EventDatabase db;
  for (const char* who : {"A", "B", "C"}) {
    AddIndependentStream(&db, "At", who, {{{"a", 0.5}}});
  }
  QueryPtr q = MustParse(&db, "At(x, l1 : l1 = 'a'); At(x, l2 : l2 = 'b')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto engine = ExtendedRegularEngine::Create(*nq, db);
  ASSERT_OK(engine.status());
  EXPECT_EQ(engine->num_chains(), 3u);
}

TEST(ExtendedEngineTest, ConstantKeyRestrictsBindings) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}});
  AddIndependentStream(&db, "At", "Sue", {{{"a", 0.5}}});
  // x is bound through Person(x) only at runtime; the binding enumeration
  // offers both keys, but a selection filters Sue out.
  AddRelation(&db, "Person", {{"Joe"}});
  ExpectMatchesBruteForce(&db, "(At(x, l : l = 'a')) WHERE Person(x)",
                          QueryClass::kRegular);
}

TEST(BindingsTest, CandidateValuesIntersectAcrossSubgoals) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"a", 0.5}}});
  AddIndependentStream(&db, "R", "k2", {{{"a", 0.5}}});
  AddIndependentStream(&db, "S", "k2", {{{"a", 0.5}}});
  AddIndependentStream(&db, "S", "k3", {{{"a", 0.5}}});
  QueryPtr q = MustParse(&db, "R(x, u); S(x, v)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  SymbolId x = db.interner().Intern("x");
  std::set<Value> values =
      CandidateValues(*nq, db, x, Binding{}, 0, nq->subgoals.size());
  ASSERT_EQ(values.size(), 1u);  // only k2 appears in both R and S
  EXPECT_EQ(*values.begin(), db.Sym("k2"));
}

TEST(BindingsTest, MultiAttributeKeysStayConsistent) {
  EventDatabase db;
  EventSchema carries;
  carries.type = db.interner().Intern("Carries");
  carries.attr_names = {db.interner().Intern("person"),
                        db.interner().Intern("object"),
                        db.interner().Intern("loc")};
  carries.num_key_attrs = 2;
  ASSERT_OK(db.DeclareSchema(carries));
  for (auto [p, o] : std::initializer_list<std::pair<const char*, const char*>>{
           {"Joe", "laptop"}, {"Joe", "mug"}, {"Sue", "laptop"}}) {
    Stream s(carries.type, {db.Sym(p), db.Sym(o)}, 1, 1, false);
    s.InternTuple({db.Sym("office")});
    ASSERT_OK(s.SetMarginal(1, {0.5, 0.5}));
    ASSERT_TRUE(db.AddStream(std::move(s)).ok());
  }
  QueryPtr q = MustParse(&db, "Carries(x, y, l1); Carries(x, y, l2)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  std::set<SymbolId> vars = {db.interner().Intern("x"),
                             db.interner().Intern("y")};
  std::vector<Binding> bindings = EnumerateBindings(*nq, db, vars);
  // Exactly the three real key pairs, not the 2x2 cross product.
  EXPECT_EQ(bindings.size(), 3u);
}


TEST(ExtendedEngineTest, PerBindingSeriesIdentifiesTheActor) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.9}}, {{"b", 0.9}}});
  AddIndependentStream(&db, "At", "Sue", {{{"b", 0.9}}, {{"a", 0.9}}});
  QueryPtr q = MustParse(&db, "At(x, l1 : l1 = 'a'); At(x, l2 : l2 = 'b')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto engine = ExtendedRegularEngine::Create(*nq, db);
  ASSERT_OK(engine.status());
  auto series = engine->RunPerBinding();
  ASSERT_EQ(series.size(), 2u);
  SymbolId x = db.interner().Intern("x");
  for (const auto& s : series) {
    double p2 = s.probs[2];
    if (s.binding.at(x) == db.Sym("Joe")) {
      EXPECT_NEAR(p2, 0.81, 1e-12);  // Joe did a -> b
    } else {
      EXPECT_NEAR(p2, 0.0, 1e-12);   // Sue went the other way
    }
  }
}

TEST(ExtendedEngineTest, PerBindingSeriesCombineToRunAnswer) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.6}}, {{"b", 0.5}}});
  AddIndependentStream(&db, "At", "Sue", {{{"a", 0.4}}, {{"b", 0.7}}});
  QueryPtr q = MustParse(&db, "At(x, l1 : l1 = 'a'); At(x, l2 : l2 = 'b')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto e1 = ExtendedRegularEngine::Create(*nq, db);
  auto e2 = ExtendedRegularEngine::Create(*nq, db);
  ASSERT_OK(e1.status());
  ASSERT_OK(e2.status());
  std::vector<double> combined = e1->Run();
  auto series = e2->RunPerBinding();
  for (Timestamp t = 1; t < combined.size(); ++t) {
    double none = 1.0;
    for (const auto& s : series) none *= 1.0 - s.probs[t];
    EXPECT_NEAR(combined[t], 1.0 - none, 1e-12) << t;
  }
}

}  // namespace
}  // namespace lahar
