// Shared helpers for building small probabilistic event databases in tests.
#ifndef LAHAR_TESTS_TEST_UTIL_H_
#define LAHAR_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "model/database.h"
#include "query/parser.h"

namespace lahar {
namespace testing {

#define ASSERT_OK(expr)                                 \
  do {                                                  \
    const ::lahar::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

#define EXPECT_OK(expr)                                 \
  do {                                                  \
    const ::lahar::Status _st = (expr);                 \
    EXPECT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

/// A per-timestep distribution over single-attribute outcomes given as
/// (location-name, probability) pairs; missing mass is bottom.
using StepDist = std::vector<std::pair<std::string, double>>;

/// Declares the one-value-attribute schema Type(key | value) if absent.
inline void DeclareUnarySchema(EventDatabase* db, const std::string& type) {
  EventSchema schema;
  schema.type = db->interner().Intern(type);
  schema.attr_names = {db->interner().Intern("id"),
                       db->interner().Intern("value")};
  schema.num_key_attrs = 1;
  (void)db->DeclareSchema(schema);  // ignore AlreadyExists
}

/// Adds an independent stream of `type` for key `key` with the given
/// per-timestep distributions (timestep 1 first).
inline StreamId AddIndependentStream(EventDatabase* db,
                                     const std::string& type,
                                     const std::string& key,
                                     const std::vector<StepDist>& steps) {
  DeclareUnarySchema(db, type);
  Stream s(db->interner().Intern(type), {db->Sym(key)}, 1,
           static_cast<Timestamp>(steps.size()), /*markovian=*/false);
  // Intern the full domain first so distributions are sized consistently.
  for (const StepDist& step : steps) {
    for (const auto& [name, p] : step) {
      s.InternTuple({db->Sym(name)});
    }
  }
  for (size_t i = 0; i < steps.size(); ++i) {
    std::vector<double> dist(s.domain_size(), 0.0);
    double total = 0;
    for (const auto& [name, p] : steps[i]) {
      dist[s.LookupTuple({db->Sym(name)})] += p;
      total += p;
    }
    dist[kBottom] = 1.0 - total;
    EXPECT_TRUE(s.SetMarginal(static_cast<Timestamp>(i + 1), dist).ok());
  }
  auto id = db->AddStream(std::move(s));
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  return *id;
}

/// Adds a deterministic stream: one certain location per timestep ("" means
/// bottom / no event).
inline StreamId AddCertainStream(EventDatabase* db, const std::string& type,
                                 const std::string& key,
                                 const std::vector<std::string>& locs) {
  std::vector<StepDist> steps;
  for (const std::string& l : locs) {
    steps.push_back(l.empty() ? StepDist{} : StepDist{{l, 1.0}});
  }
  return AddIndependentStream(db, type, key, steps);
}

/// Adds a Markovian stream over `domain` with a uniform initial
/// distribution over the named states and a self-transition-biased CPT.
/// `self` is the self-transition probability; remaining mass spreads
/// uniformly over the other states (bottom excluded from the domain here).
inline StreamId AddMarkovStream(EventDatabase* db, const std::string& type,
                                const std::string& key,
                                const std::vector<std::string>& domain,
                                Timestamp horizon, double self) {
  DeclareUnarySchema(db, type);
  Stream s(db->interner().Intern(type), {db->Sym(key)}, 1, horizon,
           /*markovian=*/true);
  for (const std::string& d : domain) s.InternTuple({db->Sym(d)});
  size_t n = s.domain_size();  // includes bottom
  std::vector<double> init(n, 0.0);
  for (size_t d = 1; d < n; ++d) init[d] = 1.0 / domain.size();
  EXPECT_TRUE(s.SetInitial(init).ok());
  Matrix cpt(n, n, 0.0);
  // Bottom stays bottom (keys never reappear in this toy builder).
  cpt.At(0, 0) = 1.0;
  for (size_t d = 1; d < n; ++d) {
    for (size_t d2 = 1; d2 < n; ++d2) {
      cpt.At(d, d2) = d == d2 ? self : (1.0 - self) / (domain.size() - 1);
    }
    if (domain.size() == 1) cpt.At(d, d) = 1.0;
  }
  for (Timestamp t = 1; t < horizon; ++t) {
    EXPECT_TRUE(s.SetCpt(t, cpt).ok());
  }
  EXPECT_TRUE(s.FinalizeMarkov().ok());
  auto id = db->AddStream(std::move(s));
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  return *id;
}

/// Adds tuples to a (unary or n-ary) relation.
inline void AddRelation(EventDatabase* db, const std::string& name,
                        const std::vector<std::vector<std::string>>& tuples) {
  size_t arity = tuples.empty() ? 1 : tuples[0].size();
  auto rel = db->DeclareRelation(name, arity);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  for (const auto& t : tuples) {
    ValueTuple vt;
    for (const auto& s : t) vt.push_back(db->Sym(s));
    ASSERT_TRUE((*rel)->Insert(vt).ok());
  }
}

/// Parses a query, asserting success.
inline QueryPtr MustParse(EventDatabase* db, const std::string& text) {
  auto q = ParseQuery(text, &db->interner());
  EXPECT_TRUE(q.ok()) << q.status().ToString() << " in: " << text;
  return q.ok() ? *q : nullptr;
}

}  // namespace testing
}  // namespace lahar

#endif  // LAHAR_TESTS_TEST_UTIL_H_
