#include <gtest/gtest.h>

#include "automaton/nfa.h"
#include "automaton/symbols.h"
#include "query/normalize.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddRelation;
using ::lahar::testing::MustParse;

NormalizedQuery Norm(EventDatabase* db, const std::string& text) {
  QueryPtr q = MustParse(db, text);
  auto nq = Normalize(*q);
  EXPECT_OK(nq.status());
  return *nq;
}

TEST(NfaTest, SingleSubgoalAcceptsOnA1) {
  EventDatabase db;
  NormalizedQuery nq = Norm(&db, "R(k, x)");
  auto nfa = QueryNfa::Build(nq);
  ASSERT_OK(nfa.status());
  StateMask s = nfa->InitialStates();
  EXPECT_FALSE(nfa->Accepts(s));
  // Input without a1: stays at start only.
  s = nfa->Transition(s, 0);
  EXPECT_FALSE(nfa->Accepts(s));
  // Input with a1 (and m1): accepts.
  s = nfa->Transition(s, MatchBit(0) | AcceptBit(0));
  EXPECT_TRUE(nfa->Accepts(s));
  // Next empty input: acceptance is per-timestep, not latched.
  s = nfa->Transition(s, 0);
  EXPECT_FALSE(nfa->Accepts(s));
}

TEST(NfaTest, SequenceBlocksOnMatchWithoutAccept) {
  EventDatabase db;
  NormalizedQuery nq = Norm(&db, "(R(k, x); R(k, y)) WHERE y = 'b'");
  auto nfa = QueryNfa::Build(nq);
  ASSERT_OK(nfa.status());
  const SymbolMask a1 = MatchBit(0) | AcceptBit(0);
  const SymbolMask m2 = MatchBit(1);
  const SymbolMask a2 = MatchBit(1) | AcceptBit(1);
  // a1, then m2-without-a2 (the blocking event), then a2: must NOT accept
  // from the first thread (its successor was consumed), but the m2 event
  // also matches subgoal 1? No — distinct subgoals have distinct symbols;
  // here every R event produces m1/a1 too, so model that faithfully:
  const SymbolMask any_r_blocking = a1 | m2;  // R event failing y='b'
  const SymbolMask r_b = a1 | a2;             // R event with y='b'
  StateMask s = nfa->InitialStates();
  s = nfa->Transition(s, any_r_blocking);  // match subgoal 1
  s = nfa->Transition(s, any_r_blocking);  // blocks the waiting thread...
  s = nfa->Transition(s, r_b);
  // ...but the second event also re-matched subgoal 1, so its successor
  // (r_b) completes a fresh thread: accept.
  EXPECT_TRUE(nfa->Accepts(s));
  // Pure blocker that matches only subgoal 2's shape: kills the thread.
  StateMask s2 = nfa->InitialStates();
  s2 = nfa->Transition(s2, a1);
  s2 = nfa->Transition(s2, m2);  // blocking event, no new subgoal-1 match
  s2 = nfa->Transition(s2, a2);
  EXPECT_FALSE(nfa->Accepts(s2));
}

TEST(NfaTest, GapsDoNotBlock) {
  EventDatabase db;
  NormalizedQuery nq = Norm(&db, "R(k, x : x = 'a'); R(k, y : y = 'b')");
  auto nfa = QueryNfa::Build(nq);
  ASSERT_OK(nfa.status());
  StateMask s = nfa->InitialStates();
  s = nfa->Transition(s, MatchBit(0) | AcceptBit(0));
  s = nfa->Transition(s, 0);  // bottom timestep
  s = nfa->Transition(s, 0);
  s = nfa->Transition(s, MatchBit(1) | AcceptBit(1));
  EXPECT_TRUE(nfa->Accepts(s));
}

TEST(NfaTest, KleeneLoopsAcceptEachUnfolding) {
  EventDatabase db;
  AddRelation(&db, "Hall", {{"h"}});
  NormalizedQuery nq = Norm(&db, "R(k, x)+{ : Hall(x)}");
  auto nfa = QueryNfa::Build(nq);
  ASSERT_OK(nfa.status());
  const SymbolMask a1 = MatchBit(0) | AcceptBit(0);
  StateMask s = nfa->InitialStates();
  s = nfa->Transition(s, a1);
  EXPECT_TRUE(nfa->Accepts(s));
  s = nfa->Transition(s, a1);  // consecutive unfolding
  EXPECT_TRUE(nfa->Accepts(s));
  s = nfa->Transition(s, 0);   // gap
  EXPECT_FALSE(nfa->Accepts(s));
  s = nfa->Transition(s, a1);  // resume after the gap
  EXPECT_TRUE(nfa->Accepts(s));
  // A match-without-accept event ends the chain for good.
  s = nfa->Transition(s, MatchBit(0));
  s = nfa->Transition(s, a1);
  EXPECT_TRUE(nfa->Accepts(s));  // ...but also starts a new one (.* prefix)
}

TEST(NfaTest, MemoizationToggleGivesSameResults) {
  EventDatabase db;
  NormalizedQuery nq = Norm(&db, "R(k, x : x = 'a'); R(k, y : y = 'b')");
  auto memo = QueryNfa::Build(nq);
  auto plain = QueryNfa::Build(nq);
  ASSERT_OK(memo.status());
  ASSERT_OK(plain.status());
  plain->set_memoization(false);
  Rng rng(3);
  StateMask s1 = memo->InitialStates(), s2 = plain->InitialStates();
  for (int i = 0; i < 200; ++i) {
    SymbolMask input = rng.Next() & 0xF;
    s1 = memo->Transition(s1, input);
    s2 = plain->Transition(s2, input);
    ASSERT_EQ(s1, s2);
  }
}

TEST(NfaTest, TooManySubgoalsRejected) {
  EventDatabase db;
  std::string text = "R(k, x1)";
  for (int i = 2; i <= 32; ++i) {
    text += "; R(k, x" + std::to_string(i) + ")";
  }
  NormalizedQuery nq = Norm(&db, text);
  EXPECT_FALSE(QueryNfa::Build(nq).ok());
}

TEST(SymbolTableTest, MasksReflectMatchAndAccept) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k", {{{"a", 0.5}, {"b", 0.3}}});
  NormalizedQuery nq = Norm(&db, "(R('k', x)) WHERE x = 'a'");
  auto table = SymbolTable::Build(nq, db);
  ASSERT_OK(table.status());
  ASSERT_EQ(table->participating().size(), 1u);
  const Stream& s = db.stream(table->participating()[0]);
  DomainIndex a = s.LookupTuple({db.Sym("a")});
  DomainIndex b = s.LookupTuple({db.Sym("b")});
  EXPECT_EQ(table->MaskFor(0, a), MatchBit(0) | AcceptBit(0));
  EXPECT_EQ(table->MaskFor(0, b), MatchBit(0));  // matches, fails x='a'
  EXPECT_EQ(table->MaskFor(0, kBottom), SymbolMask{0});
}

TEST(SymbolTableTest, KeyConstantsFilterStreams) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"a", 0.5}}});
  AddIndependentStream(&db, "R", "k2", {{{"a", 0.5}}});
  NormalizedQuery nq = Norm(&db, "R('k1', x)");
  auto table = SymbolTable::Build(nq, db);
  ASSERT_OK(table.status());
  ASSERT_EQ(table->participating().size(), 1u);
  EXPECT_EQ(db.stream(table->participating()[0]).key()[0], db.Sym("k1"));
}

TEST(SymbolTableTest, RepeatedVariableRequiresEqualValues) {
  EventDatabase db;
  // Schema with two value attributes: Pair(key | u, v).
  EventSchema schema;
  schema.type = db.interner().Intern("Pair");
  schema.attr_names = {db.interner().Intern("id"), db.interner().Intern("u"),
                       db.interner().Intern("v")};
  schema.num_key_attrs = 1;
  ASSERT_OK(db.DeclareSchema(schema));
  Stream s(schema.type, {db.Sym("k")}, 2, 1, false);
  DomainIndex same = s.InternTuple({db.Sym("a"), db.Sym("a")});
  DomainIndex diff = s.InternTuple({db.Sym("a"), db.Sym("b")});
  ASSERT_OK(s.SetMarginal(1, {0.0, 0.5, 0.5}));
  ASSERT_TRUE(db.AddStream(std::move(s)).ok());
  NormalizedQuery nq = Norm(&db, "Pair('k', z, z)");
  auto table = SymbolTable::Build(nq, db);
  ASSERT_OK(table.status());
  EXPECT_NE(table->MaskFor(0, same), SymbolMask{0});
  EXPECT_EQ(table->MaskFor(0, diff), SymbolMask{0});
}

TEST(SymbolTableTest, MultipleSubgoalsShareOneStream) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k", {{{"a", 0.5}, {"b", 0.3}}});
  NormalizedQuery nq = Norm(&db, "R('k', x : x = 'a'); R('k', y : y = 'b')");
  auto table = SymbolTable::Build(nq, db);
  ASSERT_OK(table.status());
  const Stream& s = db.stream(table->participating()[0]);
  DomainIndex a = s.LookupTuple({db.Sym("a")});
  DomainIndex b = s.LookupTuple({db.Sym("b")});
  EXPECT_EQ(table->MaskFor(0, a), MatchBit(0) | AcceptBit(0));
  EXPECT_EQ(table->MaskFor(0, b), MatchBit(1) | AcceptBit(1));
}

TEST(UnifyEventTest, ConstantsAndVariables) {
  EventDatabase db;
  Subgoal g;
  g.type = db.interner().Intern("At");
  g.terms = {Term::Const(db.Sym("Joe")), Term::Var(db.interner().Intern("l"))};
  Binding b;
  ValueTuple key = {db.Sym("Joe")};
  ValueTuple values = {db.Sym("office")};
  EXPECT_TRUE(UnifyEvent(g, key, values, 1, &b));
  EXPECT_EQ(b.at(db.interner().Intern("l")), db.Sym("office"));
  ValueTuple other_key = {db.Sym("Sue")};
  Binding b2;
  EXPECT_FALSE(UnifyEvent(g, other_key, values, 1, &b2));
  // Pre-bound variable must agree.
  Binding b3{{db.interner().Intern("l"), db.Sym("hall")}};
  EXPECT_FALSE(UnifyEvent(g, key, values, 1, &b3));
}

}  // namespace
}  // namespace lahar
