// End-to-end integration tests: miniature versions of the paper's quality
// experiments, pinned so regressions in the simulator, inference, engines,
// or metrics surface as test failures (the full-size versions live in
// bench/).
#include <gtest/gtest.h>

#include <string>

#include "engine/deterministic_engine.h"
#include "engine/lahar.h"
#include "engine/regular_engine.h"
#include "metrics/quality.h"
#include "sim/scenarios.h"
#include "test_util.h"

namespace lahar {
namespace {

PipelineConfig QualityConfig() {
  PipelineConfig config;
  config.read_rate = 0.6;
  config.bleed_rate = 0.06;
  config.room_stay = 0.8;
  config.coffee_bias = 3.0;
  config.num_particles = 100;
  return config;
}

std::string CoffeeQuery(const std::string& tag) {
  return "(At('" + tag + "', l1); At('" + tag + "', l2); At('" + tag +
         "', l3)) WHERE NotRoom(l1) AND NotRoom(l2) AND CoffeeRoom(l3)";
}

TEST(IntegrationTest, ArchivedLaharBeatsViterbiOnRecall) {
  auto scenario = OfficeScenario(3, 200, /*seed=*/2008, QualityConfig());
  ASSERT_OK(scenario.status());
  auto truth_db = scenario->BuildDatabase(StreamKind::kTruth);
  auto markov_db = scenario->BuildDatabase(StreamKind::kSmoothed);
  ASSERT_OK(truth_db.status());
  ASSERT_OK(markov_db.status());
  size_t lahar_tp = 0, lahar_fn = 0, viterbi_tp = 0, viterbi_fn = 0;
  for (const TagTrace& tag : scenario->tags) {
    std::string query = CoffeeQuery(tag.name);
    Lahar truth_lahar(truth_db->get());
    auto truth_answer = truth_lahar.Run(query);
    ASSERT_OK(truth_answer.status());
    auto truth = DetectionEvents(truth_answer->probs, 0.5);
    Lahar lahar(markov_db->get());
    auto answer = lahar.Run(query);
    ASSERT_OK(answer.status());
    QualityScore l = Score(answer->probs, 0.1, truth, 8);
    lahar_tp += l.true_positives;
    lahar_fn += l.false_negatives;
    auto prepared = lahar.Prepare(query);
    auto viterbi = DeterministicEngine::Create(prepared->ast, **markov_db,
                                               Determinization::kViterbi);
    ASSERT_OK(viterbi.status());
    auto sat = viterbi->Run();
    ASSERT_OK(sat.status());
    QualityScore v = Score(*sat, truth, 8);
    viterbi_tp += v.true_positives;
    viterbi_fn += v.false_negatives;
  }
  ASSERT_GT(lahar_tp + lahar_fn, 0u);
  double lahar_recall = double(lahar_tp) / (lahar_tp + lahar_fn);
  double viterbi_recall = double(viterbi_tp) / (viterbi_tp + viterbi_fn);
  EXPECT_GT(lahar_recall, viterbi_recall)
      << "archived Lahar must out-recall the Viterbi MAP baseline";
}

TEST(IntegrationTest, MarkovOccupancyBeatsIndependence) {
  // The Fig. 11 shape in miniature: consecutive-room-occupancy probability
  // under Markovian correlations dwarfs the independent product.
  PipelineConfig config;
  config.read_rate = 0.8;
  config.room_stay = 0.6;
  auto scenario = RoomOccupancyScenario(30, /*seed=*/11, config);
  ASSERT_OK(scenario.status());
  auto markov_db = scenario->BuildDatabase(StreamKind::kSmoothed);
  auto indep_db = scenario->BuildDatabase(StreamKind::kSmoothedIndependent);
  ASSERT_OK(markov_db.status());
  ASSERT_OK(indep_db.status());
  const char* query =
      "(At('tag1', l1); At('tag1', l2); At('tag1', l3)) "
      "WHERE l1 = 'room4' AND l2 = 'room4' AND l3 = 'room4'";
  Lahar m(markov_db->get()), i(indep_db->get());
  auto markov = m.Run(query);
  auto indep = i.Run(query);
  ASSERT_OK(markov.status());
  ASSERT_OK(indep.status());
  double markov_peak = 0, indep_peak = 0;
  for (Timestamp t = 1; t < markov->probs.size(); ++t) {
    markov_peak = std::max(markov_peak, markov->probs[t]);
    indep_peak = std::max(indep_peak, indep->probs[t]);
  }
  EXPECT_GT(markov_peak, 2 * indep_peak)
      << "correlations must accrue occupancy probability";
}

TEST(IntegrationTest, PerfectSensorsGiveCertainAnswers) {
  // With a 100% read rate and antennas everywhere, inference recovers the
  // truth and the probabilistic answer collapses to the deterministic one.
  PipelineConfig config;
  config.read_rate = 1.0;
  config.bleed_rate = 0.0;
  Floorplan fp;
  uint32_t a = fp.AddLocation("za", RoomType::kHallway, true);
  uint32_t b = fp.AddLocation("zb", RoomType::kHallway, true);
  uint32_t c = fp.AddLocation("zc", RoomType::kHallway, true);
  fp.Link(a, b);
  fp.Link(b, c);
  auto shared_fp = std::make_shared<const Floorplan>(std::move(fp));
  auto pipeline =
      std::make_shared<const TracePipeline>(shared_fp.get(), config);
  Scenario scenario;
  scenario.floorplan = shared_fp;
  scenario.pipeline = pipeline;
  scenario.seed = 3;
  Rng rng(3);
  scenario.tags.push_back(
      pipeline->Observe("tag1", TruePath{0, a, b, c, c}, &rng));
  auto db = scenario.BuildDatabase(StreamKind::kExactFiltered);
  ASSERT_OK(db.status());
  Lahar lahar(db->get());
  auto answer =
      lahar.Run("At('tag1', l1 : l1 = 'za'); At('tag1', l2 : l2 = 'zb')");
  ASSERT_OK(answer.status());
  EXPECT_NEAR(answer->probs[2], 1.0, 1e-9);
  EXPECT_NEAR(answer->probs[1], 0.0, 1e-9);
  EXPECT_NEAR(answer->probs[3], 0.0, 1e-9);
}

TEST(IntegrationTest, AllStreamKindsAnswerTheCoffeeQuery) {
  auto scenario = OfficeScenario(2, 60, /*seed=*/5, QualityConfig());
  ASSERT_OK(scenario.status());
  for (StreamKind kind :
       {StreamKind::kFiltered, StreamKind::kExactFiltered,
        StreamKind::kSmoothed, StreamKind::kSmoothedIndependent,
        StreamKind::kTruth}) {
    auto db = scenario->BuildDatabase(kind);
    ASSERT_OK(db.status());
    Lahar lahar(db->get());
    auto answer = lahar.Run(CoffeeQuery("tag1"));
    ASSERT_TRUE(answer.ok())
        << StreamKindName(kind) << ": " << answer.status().ToString();
    EXPECT_EQ(answer->engine, EngineKind::kRegular) << StreamKindName(kind);
    for (double p : answer->probs) {
      ASSERT_GE(p, -1e-9) << StreamKindName(kind);
      ASSERT_LE(p, 1 + 1e-9) << StreamKindName(kind);
    }
  }
}

TEST(IntegrationTest, IntervalProbabilityAnswersAtAllQuestions) {
  auto scenario = OfficeScenario(1, 80, /*seed=*/9, QualityConfig());
  ASSERT_OK(scenario.status());
  auto truth_db = scenario->BuildDatabase(StreamKind::kTruth);
  auto db = scenario->BuildDatabase(StreamKind::kSmoothed);
  ASSERT_OK(truth_db.status());
  ASSERT_OK(db.status());
  // Did tag1 ever get coffee? Truth first:
  Lahar truth_lahar(truth_db->get());
  auto truth_answer = truth_lahar.Run(CoffeeQuery("tag1"));
  ASSERT_OK(truth_answer.status());
  bool truly_happened =
      !DetectionEvents(truth_answer->probs, 0.5).empty();
  ASSERT_TRUE(truly_happened);  // the office-worker script always visits
  Lahar lahar(db->get());
  auto prepared = lahar.Prepare(CoffeeQuery("tag1"));
  ASSERT_OK(prepared.status());
  auto chain = RegularChain::Create(prepared->normalized, **db);
  ASSERT_OK(chain.status());
  chain->EnableAcceptTracking();
  while (chain->time() < (*db)->horizon()) chain->Step();
  // The event happened several times over 80 steps; the accumulated
  // interval probability should be decisive even with noisy sensors.
  EXPECT_GT(chain->AcceptedProb(), 0.8);
}

}  // namespace
}  // namespace lahar
