// Wire-protocol robustness: codec round trips, incremental framing, and a
// live loopback server fed malformed, truncated, oversized, unknown-type,
// and version-mismatched frames plus a deterministic fuzz loop — every case
// must produce a clean error frame (or a clean disconnect for framing
// violations), never a crash or a wedged server.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "runtime/executor.h"
#include "runtime/replay.h"
#include "test_util.h"

namespace lahar {
namespace net {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::StepDist;
using namespace std::chrono_literals;

// --- pure codec tests ----------------------------------------------------

TEST(FrameTest, EncodeDecodeRoundTrip) {
  serial::Writer w;
  w.Str("hello");
  w.U64(42);
  std::string bytes = EncodeFrame(MsgType::kRegister, w);
  FrameReader reader;
  reader.Append(bytes);
  Frame frame;
  ASSERT_OK(reader.Next(&frame));
  EXPECT_EQ(frame.version, kProtocolVersion);
  EXPECT_EQ(frame.msg_type(), MsgType::kRegister);
  EXPECT_EQ(frame.body, w.str());
  EXPECT_EQ(reader.buffered(), 0u);
  // No second frame.
  EXPECT_EQ(reader.Next(&frame).code(), StatusCode::kNotFound);
}

TEST(FrameTest, ByteAtATimeReassembly) {
  serial::Writer w;
  w.Str("payload");
  std::string bytes = EncodeFrame(MsgType::kStats, w) +
                      EncodeFrame(MsgType::kCheckpoint);
  FrameReader reader;
  std::vector<Frame> frames;
  for (char c : bytes) {
    reader.Append(std::string_view(&c, 1));
    Frame frame;
    Status s = reader.Next(&frame);
    if (s.ok()) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].msg_type(), MsgType::kStats);
  EXPECT_EQ(frames[1].msg_type(), MsgType::kCheckpoint);
  EXPECT_TRUE(frames[1].body.empty());
}

TEST(FrameTest, OversizedLengthPoisonsReader) {
  // Declared length past kMaxFrameBytes: the stream cannot be resynced.
  std::string bytes = "\xff\xff\xff\xff";
  FrameReader reader;
  reader.Append(bytes);
  Frame frame;
  EXPECT_EQ(reader.Next(&frame).code(), StatusCode::kOutOfRange);
  // Poisoned: even appending a well-formed frame cannot recover it.
  reader.Append(EncodeFrame(MsgType::kStats));
  EXPECT_EQ(reader.Next(&frame).code(), StatusCode::kOutOfRange);
}

TEST(FrameTest, UndersizedLengthPoisonsReader) {
  // A frame needs at least version + type; a 1-byte payload is nonsense.
  std::string bytes{"\x01\x00\x00\x00\x01", 5};
  FrameReader reader;
  reader.Append(bytes);
  Frame frame;
  EXPECT_EQ(reader.Next(&frame).code(), StatusCode::kOutOfRange);
}

TEST(BatchCodecTest, RoundTripsMarginalsAndCpts) {
  TickBatch batch;
  batch.t = 17;
  StreamUpdate a;
  a.stream = 3;
  a.marginal = {0.25, 0.5, 0.25};
  batch.updates.push_back(a);
  StreamUpdate b;
  b.stream = 9;
  b.marginal = {0.1, 0.9};
  Matrix cpt(2, 2, 0.0);
  cpt.At(0, 0) = 0.75;
  cpt.At(0, 1) = 0.25;
  cpt.At(1, 0) = 1.0 / 3.0;  // not representable exactly in decimal
  cpt.At(1, 1) = 2.0 / 3.0;
  b.cpt = cpt;
  batch.updates.push_back(b);

  serial::Writer w;
  EncodeBatch(batch, &w);
  serial::Reader r(w.str());
  TickBatch out;
  ASSERT_OK(DecodeBatch(&r, &out));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(out.t, batch.t);
  ASSERT_EQ(out.updates.size(), 2u);
  EXPECT_EQ(out.updates[0].stream, 3u);
  EXPECT_EQ(out.updates[0].marginal, a.marginal);  // bit-exact doubles
  EXPECT_FALSE(out.updates[0].cpt.has_value());
  ASSERT_TRUE(out.updates[1].cpt.has_value());
  EXPECT_EQ(out.updates[1].cpt->At(1, 0), cpt.At(1, 0));
}

TEST(BatchCodecTest, TruncatedBodyFailsCleanly) {
  TickBatch batch;
  batch.t = 1;
  StreamUpdate u;
  u.stream = 0;
  u.marginal = {0.5, 0.5};
  batch.updates.push_back(u);
  serial::Writer w;
  EncodeBatch(batch, &w);
  std::string bytes = w.str();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    serial::Reader r(std::string_view(bytes.data(), cut));
    TickBatch out;
    EXPECT_FALSE(DecodeBatch(&r, &out).ok()) << "cut=" << cut;
  }
}

TEST(BatchCodecTest, LyingUpdateCountFailsCleanly) {
  // Claims 2^31 updates in a 10-byte body: the up-front size guard must
  // reject it without attempting to reserve that much.
  serial::Writer w;
  w.U32(1);           // t
  w.U32(1u << 31);    // n
  w.U32(0);           // fragment of the first update
  serial::Reader r(w.str());
  TickBatch out;
  EXPECT_FALSE(DecodeBatch(&r, &out).ok());
}

TEST(BatchCodecTest, OverflowingCptDimsFailCleanly) {
  // rows=2^31, cols=2^30 gives cells=2^61, and a naive `cells * 8` bound
  // check wraps uint64 to 0. The decoder must reject the dims instead of
  // attempting a ~2^61-element Matrix allocation.
  serial::Writer w;
  w.U32(1);            // t
  w.U32(1);            // n
  w.U32(0);            // stream
  w.U8(1);             // has_cpt
  w.DoubleVec({});     // empty marginal
  w.U32(0x80000000u);  // rows
  w.U32(0x40000000u);  // cols
  serial::Reader r(w.str());
  TickBatch out;
  EXPECT_FALSE(DecodeBatch(&r, &out).ok());
}

TEST(BatchCodecTest, OverflowingMarginalLengthFailsCleanly) {
  // A marginal length prefix of 2^61 wraps a naive `len * 8` byte-count
  // check to 0; Reader::DoubleVec must reject it before reserving.
  serial::Writer w;
  w.U32(1);                  // t
  w.U32(1);                  // n
  w.U32(0);                  // stream
  w.U8(0);                   // has_cpt
  w.U64(uint64_t{1} << 61);  // marginal length (lie)
  serial::Reader r(w.str());
  TickBatch out;
  EXPECT_FALSE(DecodeBatch(&r, &out).ok());
}

TEST(BatchCodecTest, ManyEmptyMarginalUpdatesParse) {
  // Each empty-marginal update is exactly 13 bytes on the wire — the
  // decoder's minimum — so the count-vs-size guard must not reject a
  // well-formed batch of them.
  TickBatch batch;
  batch.t = 5;
  for (uint32_t i = 0; i < 64; ++i) {
    StreamUpdate u;
    u.stream = i;
    batch.updates.push_back(u);
  }
  serial::Writer w;
  EncodeBatch(batch, &w);
  serial::Reader r(w.str());
  TickBatch out;
  ASSERT_OK(DecodeBatch(&r, &out));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(out.updates.size(), 64u);
}

TEST(ErrorCodecTest, RoundTripAndStatusMapping) {
  serial::Writer w;
  EncodeError(WireError::kQuotaExceeded, "tenant over quota", &w);
  serial::Reader r(w.str());
  ErrorBody body;
  ASSERT_OK(DecodeError(&r, &body));
  EXPECT_EQ(body.code, WireError::kQuotaExceeded);
  Status s = body.ToStatus();
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  ASSERT_NE(s.GetPayload("wire_error"), nullptr);
  EXPECT_EQ(*s.GetPayload("wire_error"), "quota_exceeded");
}

TEST(TickUpdateCodecTest, RoundTrip) {
  TickUpdateBody body;
  body.t = 99;
  body.probs = {{1, 0.125}, {7, 1.0 / 3.0}};
  serial::Writer w;
  EncodeTickUpdate(body, &w);
  serial::Reader r(w.str());
  TickUpdateBody out;
  ASSERT_OK(DecodeTickUpdate(&r, &out));
  EXPECT_EQ(out.t, body.t);
  EXPECT_EQ(out.probs, body.probs);
}

// --- loopback server robustness ------------------------------------------

class LoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<StepDist> joe;
    for (Timestamp t = 1; t <= 8; ++t) joe.push_back({{"a", 0.5}});
    AddIndependentStream(&db_, "At", "Joe", joe);
    auto live = CloneDeclarations(db_);
    ASSERT_OK(live.status());
    live_ = std::move(*live);
    runtime_ = std::make_unique<StreamRuntime>(live_.get(), RuntimeOptions{});
    server_ = std::make_unique<Server>(runtime_.get(), options_);
    runtime_->Start();
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    server_->Stop();
    runtime_->ingest().Close();
    runtime_->Stop();
  }

  // The server survived whatever the test threw at it iff a fresh client
  // can still complete a handshake and a stats request.
  void ExpectServerAlive() {
    auto probe = Client::Connect("127.0.0.1", server_->port());
    ASSERT_OK(probe.status());
    ASSERT_OK((*probe)->StatsJson().status());
  }

  EventDatabase db_;
  std::unique_ptr<EventDatabase> live_;
  std::unique_ptr<StreamRuntime> runtime_;
  ServerOptions options_;
  std::unique_ptr<Server> server_;
};

TEST_F(LoopbackTest, UnknownMessageTypeGetsErrorFrame) {
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_OK(client.status());
  serial::Writer w;
  ASSERT_OK((*client)->SendRaw(EncodeFrame(static_cast<MsgType>(42), w)));
  auto reply = (*client)->ReadFrame(5000ms);
  ASSERT_OK(reply.status());
  ASSERT_EQ(reply->msg_type(), MsgType::kError);
  serial::Reader r(reply->body);
  ErrorBody err;
  ASSERT_OK(DecodeError(&r, &err));
  EXPECT_EQ(err.code, WireError::kUnknownType);
  // The connection is still usable afterwards.
  ASSERT_OK((*client)->StatsJson().status());
}

TEST_F(LoopbackTest, VersionMismatchGetsErrorFrame) {
  auto client = Client::ConnectRaw("127.0.0.1", server_->port());
  ASSERT_OK(client.status());
  // Hand-build a frame with a bumped version byte.
  std::string frame = EncodeFrame(MsgType::kStats);
  frame[kFrameHeaderBytes] = static_cast<char>(kProtocolVersion + 1);
  ASSERT_OK((*client)->SendRaw(frame));
  auto reply = (*client)->ReadFrame(5000ms);
  ASSERT_OK(reply.status());
  ASSERT_EQ(reply->msg_type(), MsgType::kError);
  serial::Reader r(reply->body);
  ErrorBody err;
  ASSERT_OK(DecodeError(&r, &err));
  EXPECT_EQ(err.code, WireError::kVersionMismatch);
  ExpectServerAlive();
}

TEST_F(LoopbackTest, IngestBeforeHelloIsRejected) {
  auto client = Client::ConnectRaw("127.0.0.1", server_->port());
  ASSERT_OK(client.status());
  TickBatch batch;
  batch.t = 1;
  Status s = (*client)->Ingest(batch);
  ASSERT_FALSE(s.ok());
  ASSERT_NE(s.GetPayload("wire_error"), nullptr);
  EXPECT_EQ(*s.GetPayload("wire_error"), "handshake_required");
}

TEST_F(LoopbackTest, MalformedBodyKeepsConnection) {
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_OK(client.status());
  // A kSubscribe body that is too short for its u64 id.
  serial::Writer w;
  w.U8(7);
  ASSERT_OK((*client)->SendRaw(EncodeFrame(MsgType::kSubscribe, w)));
  auto reply = (*client)->ReadFrame(5000ms);
  ASSERT_OK(reply.status());
  ASSERT_EQ(reply->msg_type(), MsgType::kError);
  serial::Reader r(reply->body);
  ErrorBody err;
  ASSERT_OK(DecodeError(&r, &err));
  EXPECT_EQ(err.code, WireError::kBadFrame);
  // Recoverable: the same connection still answers requests.
  ASSERT_OK((*client)->StatsJson().status());
}

TEST_F(LoopbackTest, OversizedFrameDisconnectsCleanly) {
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_OK(client.status());
  // Length prefix far past kMaxFrameBytes: unrecoverable framing error.
  ASSERT_OK((*client)->SendRaw(std::string("\xff\xff\xff\x7f", 4)));
  auto reply = (*client)->ReadFrame(5000ms);
  ASSERT_OK(reply.status());
  ASSERT_EQ(reply->msg_type(), MsgType::kError);
  serial::Reader r(reply->body);
  ErrorBody err;
  ASSERT_OK(DecodeError(&r, &err));
  EXPECT_EQ(err.code, WireError::kBadFrame);
  // ... then the server closes the connection.
  auto next = (*client)->ReadFrame(5000ms);
  EXPECT_FALSE(next.ok());
  ExpectServerAlive();
}

TEST_F(LoopbackTest, TruncatedFrameThenCloseLeavesServerAlive) {
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_OK(client.status());
  // Half a frame, then the client vanishes mid-message.
  std::string frame = EncodeFrame(MsgType::kStats);
  ASSERT_OK((*client)->SendRaw(frame.substr(0, frame.size() - 1)));
  client->reset();
  ExpectServerAlive();
}

TEST_F(LoopbackTest, UnregisterSweepsEveryConnectionsSubscription) {
  auto a = Client::Connect("127.0.0.1", server_->port());
  ASSERT_OK(a.status());
  auto b = Client::Connect("127.0.0.1", server_->port());
  ASSERT_OK(b.status());
  auto reg = (*a)->RegisterQuery("At('Joe', l : l = 'a')");
  ASSERT_OK(reg.status());
  ASSERT_OK((*a)->Subscribe(reg->id));
  ASSERT_OK((*b)->Subscribe(reg->id));
  EXPECT_EQ(server_->NetCounters().subscriptions, 2u);
  // Unregistering the query kills the subscription on BOTH connections,
  // not just the requester's — the other connection's entry must not
  // linger in the counter until that client disconnects.
  ASSERT_OK((*a)->UnregisterQuery(reg->id));
  EXPECT_EQ(server_->NetCounters().subscriptions, 0u);
}

TEST_F(LoopbackTest, FuzzedBytesNeverKillTheServer) {
  // Deterministic LCG so failures replay; bursts of garbage interleaved
  // with liveness probes. Valid-looking prefixes will sometimes parse as
  // real (malformed) requests — that is the point.
  uint64_t state = 0xC0FFEE;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint8_t>(state >> 33);
  };
  for (int round = 0; round < 32; ++round) {
    auto client = Client::ConnectRaw("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString() << " round "
                             << round;
    std::string garbage;
    const size_t len = 1 + next() % 512;
    garbage.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(next()));
    }
    // Bias half the rounds toward plausible frames: a sane length prefix
    // makes the fuzz reach the body decoders instead of dying at framing.
    if (round % 2 == 0 && garbage.size() > 6) {
      const uint32_t body = static_cast<uint32_t>(garbage.size()) - 4;
      for (int i = 0; i < 4; ++i) {
        garbage[static_cast<size_t>(i)] =
            static_cast<char>((body >> (8 * i)) & 0xFF);
      }
      garbage[4] = static_cast<char>(kProtocolVersion);
    }
    (void)(*client)->SendRaw(garbage);
    // Drain whatever error frames come back (or a disconnect) briefly.
    (void)(*client)->ReadFrame(10ms);
  }
  ExpectServerAlive();
  // Every fuzz round was observed by the server (frames or framing errors);
  // none of it may have wedged or killed the loop.
  EXPECT_GE(server_->NetCounters().total_connections, 32u);
}

}  // namespace
}  // namespace net
}  // namespace lahar
