#include <gtest/gtest.h>

#include <cmath>

#include "model/world.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddCertainStream;
using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;

TEST(ValueTest, KindsAndEquality) {
  Interner in;
  Value n;
  Value s = Value::Symbol(in.Intern("x"));
  Value i = Value::Int(7);
  EXPECT_TRUE(n.is_null());
  EXPECT_TRUE(s.is_symbol());
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.int_value(), 7);
  EXPECT_NE(s, i);
  EXPECT_EQ(Value::Int(7), i);
  EXPECT_NE(Value::Int(7), Value::Symbol(7));  // kind distinguishes
}

TEST(ValueTest, OrderingIsTotal) {
  EXPECT_LT(Value(), Value::Symbol(1));
  EXPECT_LT(Value::Symbol(1), Value::Int(0));
  EXPECT_LT(Value::Int(3), Value::Int(5));
}

TEST(ValueTest, ToStringRendersThroughInterner) {
  Interner in;
  Value s = Value::Symbol(in.Intern("Joe"));
  EXPECT_EQ(s.ToString(in), "'Joe'");
  EXPECT_EQ(Value::Int(-3).ToString(in), "-3");
  EXPECT_EQ(Value().ToString(in), "null");
}

TEST(ProbabilisticEventTest, ValidatesMass) {
  ProbabilisticEvent e;
  e.bottom_p = 0.3;
  e.outcomes.push_back({{Value::Int(1)}, 0.7});
  EXPECT_OK(e.Validate());
  e.outcomes.push_back({{Value::Int(2)}, 0.5});
  EXPECT_FALSE(e.Validate().ok());
}

TEST(StreamTest, InternTupleIsStable) {
  EventDatabase db;
  Stream s(db.interner().Intern("At"), {db.Sym("Joe")}, 1, 3, false);
  DomainIndex a = s.InternTuple({db.Sym("a")});
  DomainIndex b = s.InternTuple({db.Sym("b")});
  EXPECT_NE(a, kBottom);
  EXPECT_NE(a, b);
  EXPECT_EQ(s.InternTuple({db.Sym("a")}), a);
  EXPECT_EQ(s.LookupTuple({db.Sym("b")}), b);
  EXPECT_EQ(s.LookupTuple({db.Sym("zzz")}), Stream::kNotFound);
  EXPECT_EQ(s.domain_size(), 3u);
}

TEST(StreamTest, MarginalsAndEventAt) {
  EventDatabase db;
  StreamId id = AddIndependentStream(&db, "At", "Joe",
                                     {{{"a", 0.6}, {"b", 0.3}}, {{"a", 1.0}}});
  const Stream& s = db.stream(id);
  EXPECT_NEAR(s.ProbAt(1, s.LookupTuple({db.Sym("a")})), 0.6, 1e-12);
  EXPECT_NEAR(s.ProbAt(1, kBottom), 0.1, 1e-12);
  ProbabilisticEvent e = s.EventAt(1);
  EXPECT_OK(e.Validate());
  EXPECT_EQ(e.outcomes.size(), 2u);
  EXPECT_NEAR(e.bottom_p, 0.1, 1e-12);
}

TEST(StreamTest, RejectsBadDistribution) {
  EventDatabase db;
  Stream s(db.interner().Intern("At"), {db.Sym("Joe")}, 1, 2, false);
  s.InternTuple({db.Sym("a")});
  EXPECT_FALSE(s.SetMarginal(1, {0.5, 0.9}).ok());   // sums to 1.4
  EXPECT_FALSE(s.SetMarginal(0, {1.0, 0.0}).ok());   // t out of range
  EXPECT_FALSE(s.SetMarginal(3, {1.0, 0.0}).ok());
}

TEST(StreamTest, MarkovFinalizeChainsMarginals) {
  EventDatabase db;
  StreamId id = AddMarkovStream(&db, "At", "Joe", {"a", "b"}, 4, 0.9);
  const Stream& s = db.stream(id);
  // Uniform initial stays uniform under a symmetric kernel.
  for (Timestamp t = 1; t <= 4; ++t) {
    EXPECT_NEAR(s.ProbAt(t, 1), 0.5, 1e-12);
    EXPECT_NEAR(s.ProbAt(t, 2), 0.5, 1e-12);
  }
}

TEST(StreamTest, CptValidation) {
  EventDatabase db;
  Stream s(db.interner().Intern("At"), {db.Sym("Joe")}, 1, 3, true);
  s.InternTuple({db.Sym("a")});
  Matrix bad(2, 2, 0.4);  // rows sum to 0.8
  EXPECT_FALSE(s.SetCpt(1, bad).ok());
  Matrix wrong_shape(3, 3, 1.0 / 3);
  EXPECT_FALSE(s.SetCpt(1, wrong_shape).ok());
  EXPECT_FALSE(s.SetCpt(3, Matrix(2, 2, 0.5)).ok());  // t >= horizon
}

TEST(StreamTest, TrajectoryProbMatchesEq1) {
  EventDatabase db;
  StreamId id = AddMarkovStream(&db, "At", "Joe", {"a", "b"}, 3, 0.8);
  const Stream& s = db.stream(id);
  // P[a, a, b] = 0.5 * 0.8 * 0.2
  std::vector<DomainIndex> traj = {0, 1, 1, 2};
  EXPECT_NEAR(s.TrajectoryProb(traj), 0.5 * 0.8 * 0.2, 1e-12);
}

TEST(StreamTest, SampleTrajectoryRespectsSupport) {
  EventDatabase db;
  StreamId id = AddCertainStream(&db, "At", "Joe", {"a", "", "b"});
  Rng rng(11);
  const Stream& s = db.stream(id);
  auto traj = s.SampleTrajectory(&rng);
  EXPECT_EQ(traj[1], s.LookupTuple({db.Sym("a")}));
  EXPECT_EQ(traj[2], kBottom);
  EXPECT_EQ(traj[3], s.LookupTuple({db.Sym("b")}));
}

TEST(DatabaseTest, SchemaRequiredForStreams) {
  EventDatabase db;
  Stream s(db.interner().Intern("Unknown"), {db.Sym("k")}, 1, 1, false);
  EXPECT_FALSE(db.AddStream(std::move(s)).ok());
}

TEST(DatabaseTest, StreamsOfTypeAndHorizon) {
  EventDatabase db;
  AddCertainStream(&db, "At", "Joe", {"a"});
  AddCertainStream(&db, "At", "Sue", {"a", "b"});
  AddCertainStream(&db, "Carries", "Joe", {"x", "y", "z"});
  EXPECT_EQ(db.StreamsOfType(db.interner().Intern("At")).size(), 2u);
  EXPECT_EQ(db.StreamsOfType(db.interner().Intern("Nope")).size(), 0u);
  EXPECT_EQ(db.horizon(), 3u);
  EXPECT_OK(db.Validate());
}

TEST(DatabaseTest, RelationsRoundTrip) {
  EventDatabase db;
  auto rel = db.DeclareRelation("Hallway", 1);
  ASSERT_TRUE(rel.ok());
  ASSERT_OK((*rel)->Insert({db.Sym("h1")}));
  EXPECT_TRUE((*rel)->Contains({db.Sym("h1")}));
  EXPECT_FALSE((*rel)->Contains({db.Sym("h2")}));
  // Redeclare with same arity returns the same relation.
  auto again = db.DeclareRelation("Hallway", 1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *rel);
  EXPECT_FALSE(db.DeclareRelation("Hallway", 2).ok());
  EXPECT_FALSE((*rel)->Insert({db.Sym("a"), db.Sym("b")}).ok());
}

TEST(WorldTest, EnumerateCoversFullMass) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}, {"b", 0.5}}, {{"a", 0.3}}});
  AddMarkovStream(&db, "At", "Sue", {"a", "b"}, 2, 0.7);
  int count = 0;
  double mass = EnumerateWorlds(db, [&](const World& w, double p) {
    ++count;
    EXPECT_NEAR(WorldProb(db, w), p, 1e-12);
  });
  EXPECT_NEAR(mass, 1.0, 1e-9);
  EXPECT_GT(count, 1);
}

TEST(WorldTest, WorldEventsAtSkipsBottom) {
  EventDatabase db;
  AddCertainStream(&db, "At", "Joe", {"a", ""});
  Rng rng(1);
  World w = SampleWorld(db, &rng);
  EXPECT_EQ(WorldEventsAt(db, w, 1).size(), 1u);
  EXPECT_EQ(WorldEventsAt(db, w, 2).size(), 0u);
  Event e = WorldEventsAt(db, w, 1)[0];
  EXPECT_EQ(e.attrs.size(), 2u);  // key + value
  EXPECT_EQ(e.attrs[1], db.Sym("a"));
}

TEST(WorldTest, SampledFrequenciesMatchMarginals) {
  EventDatabase db;
  StreamId id =
      AddIndependentStream(&db, "At", "Joe", {{{"a", 0.25}, {"b", 0.5}}});
  const Stream& s = db.stream(id);
  DomainIndex a = s.LookupTuple({db.Sym("a")});
  Rng rng(42);
  int hits = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    World w = SampleWorld(db, &rng);
    if (w.values[id][1] == a) ++hits;
  }
  EXPECT_NEAR(hits / double(kDraws), 0.25, 0.02);
}

TEST(DatabaseTest, TotalTuplesCountsSupport) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}, {"b", 0.4}}});
  // Support: a, b, and bottom (0.1) = 3 entries.
  EXPECT_EQ(db.TotalTuples(), 3u);
}

}  // namespace
}  // namespace lahar
