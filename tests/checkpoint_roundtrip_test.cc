// Checkpoint/restore tests: the binary database snapshot round-trips field
// for field, a restored runtime continues a mixed-class workload with
// bit-identical per-tick results, and a producer whose batch is rejected
// mid-stream can retry and make progress (the transactional-ingest
// guarantee end to end).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/serial.h"
#include "engine/streaming.h"
#include "runtime/checkpoint.h"
#include "runtime/executor.h"
#include "runtime/ingest.h"
#include "runtime/replay.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;
using ::lahar::testing::StepDist;
using namespace std::chrono_literals;

// A small mixed archive: two independent streams, one Markovian, one
// relation — enough to exercise every section of the snapshot.
EventDatabase BuildArchive(Timestamp horizon) {
  EventDatabase db;
  std::vector<StepDist> joe, sue;
  for (Timestamp t = 1; t <= horizon; ++t) {
    joe.push_back({{"a", 0.1 + 0.5 / t}, {"b", 0.2}});
    sue.push_back({{t % 2 == 0 ? "a" : "b", 0.6}});
  }
  AddIndependentStream(&db, "At", "Joe", joe);
  AddIndependentStream(&db, "At", "Sue", sue);
  AddMarkovStream(&db, "At", "Bob", {"a", "b", "c"}, horizon, 0.8);
  lahar::testing::AddRelation(&db, "Room", {{"a"}, {"b"}});
  return db;
}

TEST(DatabaseSnapshotTest, SaveLoadRoundTripsEveryField) {
  EventDatabase db = BuildArchive(5);
  serial::Writer w;
  ASSERT_OK(db.SaveTo(&w));
  serial::Reader r(w.str());
  auto loaded = EventDatabase::LoadFrom(&r);
  ASSERT_OK(loaded.status());
  EXPECT_TRUE(r.AtEnd());
  EventDatabase& out = **loaded;
  EXPECT_EQ(out.horizon(), db.horizon());
  EXPECT_EQ(out.num_streams(), db.num_streams());
  // Same symbol ids: queries prepared against either database agree.
  EXPECT_EQ(out.interner().Intern("Sue"), db.interner().Intern("Sue"));
  for (StreamId id = 0; id < db.num_streams(); ++id) {
    const Stream& src = db.stream(id);
    const Stream& dst = out.stream(id);
    ASSERT_EQ(dst.horizon(), src.horizon()) << "stream " << id;
    EXPECT_EQ(dst.markovian(), src.markovian());
    EXPECT_EQ(dst.domain_size(), src.domain_size());
    for (Timestamp t = 1; t <= src.horizon(); ++t) {
      // EXPECT_EQ on the vectors: bit-exact doubles, unset stays unset.
      EXPECT_EQ(dst.MarginalAt(t), src.MarginalAt(t))
          << "stream " << id << " t=" << t;
    }
  }
  const Relation* room = out.FindRelation(out.interner().Intern("Room"));
  ASSERT_NE(room, nullptr);
  EXPECT_EQ(room->size(), 2u);
  // Determinism: saving the loaded copy reproduces the exact bytes.
  serial::Writer w2;
  ASSERT_OK(out.SaveTo(&w2));
  EXPECT_EQ(w.str(), w2.str());
}

TEST(DatabaseSnapshotTest, TruncatedSnapshotFailsCleanly) {
  EventDatabase db = BuildArchive(3);
  serial::Writer w;
  ASSERT_OK(db.SaveTo(&w));
  const std::string bytes = w.str();
  for (size_t cut : {size_t{0}, size_t{4}, bytes.size() / 2,
                     bytes.size() - 1}) {
    serial::Reader r(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(EventDatabase::LoadFrom(&r).ok()) << "cut=" << cut;
  }
}

// Queries covering every exact session class the runtime serves: Regular
// (single grounding), a sequence over a Markov stream, and Extended Regular
// (one chain per tag).
const std::vector<std::string> kQueries = {
    "At('Joe', l : l = 'a')",
    "At('Bob', l1 : l1 = 'a'); At('Bob', l2 : l2 = 'b')",
    "At(x, l : l = 'b')",
};

// Runs `archive` through a fresh runtime from tick 1 to `horizon`,
// checkpointing at `checkpoint_at` (0 = never), and returns (per-tick
// results, checkpoint bytes).
struct RunOutput {
  std::vector<TickResult> results;
  std::string snapshot;
};

RunOutput RunWithCheckpoint(const EventDatabase& archive,
                            Timestamp checkpoint_at,
                            const std::vector<std::string>& queries = kQueries) {
  RunOutput out;
  auto clone = CloneDeclarations(archive);
  EXPECT_TRUE(clone.ok());
  auto batches = ExtractBatches(archive);
  EXPECT_TRUE(batches.ok());
  RuntimeOptions options;
  options.num_threads = 2;
  StreamRuntime runtime(clone->get(), options);
  for (const std::string& q : queries) {
    EXPECT_TRUE(runtime.Register(q).ok());
  }
  runtime.SetTickCallback([&](const TickResult& r) {
    out.results.push_back(r);
    if (checkpoint_at != 0 && r.t == checkpoint_at) {
      auto snap = runtime.Checkpoint();  // callback-safe by contract
      EXPECT_TRUE(snap.ok()) << snap.status().ToString();
      if (snap.ok()) out.snapshot = *snap;
    }
  });
  runtime.Start();
  for (TickBatch& b : *batches) {
    EXPECT_OK(runtime.ingest().Push(std::move(b), 10000ms));
  }
  EXPECT_TRUE(runtime.WaitForTick(archive.horizon(), 10000ms));
  runtime.Stop();
  return out;
}

TEST(CheckpointRoundTripTest, RestoredRuntimeContinuesBitIdentically) {
  const Timestamp kHorizon = 8;
  const Timestamp kCheckpointAt = 4;
  EventDatabase archive = BuildArchive(kHorizon);

  // Uninterrupted run: the reference per-tick probabilities.
  RunOutput uninterrupted = RunWithCheckpoint(archive, 0);
  ASSERT_EQ(uninterrupted.results.size(), kHorizon);

  // Interrupted run: same workload, checkpoint mid-stream.
  RunOutput interrupted = RunWithCheckpoint(archive, kCheckpointAt);
  ASSERT_EQ(interrupted.results.size(), kHorizon);
  ASSERT_FALSE(interrupted.snapshot.empty());

  // Restore into a fresh runtime over a fresh declarations clone and feed
  // it the remaining ticks only.
  auto clone = CloneDeclarations(archive);
  ASSERT_OK(clone.status());
  StreamRuntime resumed(clone->get(), RuntimeOptions{});
  ASSERT_OK(resumed.Restore(interrupted.snapshot));
  EXPECT_EQ(resumed.tick(), kCheckpointAt);
  RuntimeStats restored_stats = resumed.Stats();
  ASSERT_EQ(restored_stats.queries.size(), kQueries.size());

  std::vector<TickResult> tail;
  resumed.SetTickCallback([&](const TickResult& r) { tail.push_back(r); });
  resumed.Start();
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  for (TickBatch& b : *batches) {
    if (b.t <= kCheckpointAt) continue;  // history the checkpoint covers
    ASSERT_OK(resumed.ingest().Push(std::move(b), 10000ms));
  }
  ASSERT_TRUE(resumed.WaitForTick(kHorizon, 10000ms));
  resumed.Stop();

  ASSERT_EQ(tail.size(), kHorizon - kCheckpointAt);
  for (size_t i = 0; i < tail.size(); ++i) {
    const TickResult& got = tail[i];
    const TickResult& want = uninterrupted.results[kCheckpointAt + i];
    ASSERT_EQ(got.t, want.t);
    ASSERT_EQ(got.probs.size(), want.probs.size()) << "t=" << got.t;
    for (size_t q = 0; q < want.probs.size(); ++q) {
      EXPECT_EQ(got.probs[q].first, want.probs[q].first);
      // Bit-identical, not approximately equal: restore is exact.
      EXPECT_EQ(got.probs[q].second, want.probs[q].second)
          << "query " << want.probs[q].first << " at t=" << got.t;
    }
  }
}

TEST(CheckpointRoundTripTest, SafeSessionRestoresDirectStateBitIdentically) {
  // A safe plan's session serializes its incremental evaluator state
  // directly into the checkpoint (frontier chains, keyframes, witness
  // index) — no replay. The restored session must continue bit for bit,
  // including across witness gaps and past the restore point's keyframe.
  const Timestamp kHorizon = 10;
  const Timestamp kCheckpointAt = 6;
  const std::vector<std::string> safe_queries = {
      "R(x, u1); S(x, u2); T('a', y)"};

  EventDatabase archive;
  std::vector<StepDist> r1, r2, s1, s2, tt;
  for (Timestamp t = 1; t <= kHorizon; ++t) {
    r1.push_back({{"u", 0.1 + 0.07 * t}});
    r2.push_back(t % 3 == 0 ? StepDist{} : StepDist{{"u", 0.5}});
    s1.push_back({{"v", 0.8 - 0.05 * t}});
    s2.push_back({{"v", 0.3}});
    tt.push_back(t % 4 == 2 ? StepDist{{"w", 0.6}} : StepDist{});
  }
  AddIndependentStream(&archive, "R", "k1", r1);
  AddIndependentStream(&archive, "R", "k2", r2);
  AddIndependentStream(&archive, "S", "k1", s1);
  AddIndependentStream(&archive, "S", "k2", s2);
  AddIndependentStream(&archive, "T", "a", tt);

  RunOutput uninterrupted = RunWithCheckpoint(archive, 0, safe_queries);
  ASSERT_EQ(uninterrupted.results.size(), kHorizon);
  RunOutput interrupted =
      RunWithCheckpoint(archive, kCheckpointAt, safe_queries);
  ASSERT_FALSE(interrupted.snapshot.empty());

  auto clone = CloneDeclarations(archive);
  ASSERT_OK(clone.status());
  StreamRuntime resumed(clone->get(), RuntimeOptions{});
  ASSERT_OK(resumed.Restore(interrupted.snapshot));
  EXPECT_EQ(resumed.tick(), kCheckpointAt);

  std::vector<TickResult> tail;
  resumed.SetTickCallback([&](const TickResult& r) { tail.push_back(r); });
  resumed.Start();
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  for (TickBatch& b : *batches) {
    if (b.t <= kCheckpointAt) continue;
    ASSERT_OK(resumed.ingest().Push(std::move(b), 10000ms));
  }
  ASSERT_TRUE(resumed.WaitForTick(kHorizon, 10000ms));
  resumed.Stop();

  ASSERT_EQ(tail.size(), kHorizon - kCheckpointAt);
  for (size_t i = 0; i < tail.size(); ++i) {
    const TickResult& got = tail[i];
    const TickResult& want = uninterrupted.results[kCheckpointAt + i];
    ASSERT_EQ(got.t, want.t);
    ASSERT_EQ(got.probs.size(), want.probs.size());
    for (size_t q = 0; q < want.probs.size(); ++q) {
      EXPECT_EQ(got.probs[q].second, want.probs[q].second)
          << "t=" << got.t;
    }
  }
}

TEST(CheckpointRoundTripTest, RestoreGuardsBadInput) {
  EventDatabase archive = BuildArchive(3);
  auto clone = CloneDeclarations(archive);
  ASSERT_OK(clone.status());
  StreamRuntime runtime(clone->get(), RuntimeOptions{});
  EXPECT_FALSE(runtime.Restore("garbage").ok());
  serial::Writer w;
  w.U32(kCheckpointMagic);
  w.U32(kCheckpointVersion + 1);
  EXPECT_FALSE(runtime.Restore(w.str()).ok());  // future version
  // A started runtime refuses to restore.
  auto clone2 = CloneDeclarations(archive);
  ASSERT_OK(clone2.status());
  RunOutput run = RunWithCheckpoint(archive, 2);
  ASSERT_FALSE(run.snapshot.empty());
  StreamRuntime started(clone2->get(), RuntimeOptions{});
  started.Start();
  EXPECT_FALSE(started.Restore(run.snapshot).ok());
  started.Stop();
}

TEST(IngestFaultInjectionTest, RejectedBatchRetriesWithoutWedgeOrDuplicates) {
  // A producer sends tick 2 with a malformed update for one stream: the
  // whole batch must be rejected (no half-applied horizons), and the
  // corrected retry must apply exactly once and un-wedge the pipeline.
  EventDatabase archive = BuildArchive(4);
  const std::string query = "At('Joe', l : l = 'a')";
  auto baseline = StreamingSession::Create(&archive, query);
  ASSERT_OK(baseline.status());
  std::vector<double> expected;
  for (Timestamp t = 1; t <= archive.horizon(); ++t) {
    auto p = baseline->Advance();
    ASSERT_OK(p.status());
    expected.push_back(*p);
  }

  auto clone = CloneDeclarations(archive);
  ASSERT_OK(clone.status());
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  RuntimeOptions options;
  options.num_threads = 1;
  options.reorder_window = 0;  // strict: the fault surfaces immediately
  StreamRuntime runtime(clone->get(), options);
  auto id = runtime.Register(query);
  ASSERT_OK(id.status());
  runtime.Start();

  ASSERT_OK(runtime.ingest().Push(std::move((*batches)[0]), 10000ms));
  ASSERT_TRUE(runtime.WaitForTick(1, 10000ms));

  // Fault: tick 2's batch with stream 0's marginal corrupted (sums to 1.8).
  auto faulty = ExtractBatches(archive);
  ASSERT_OK(faulty.status());
  TickBatch bad = std::move((*faulty)[1]);
  ASSERT_FALSE(bad.updates.empty());
  bad.updates[0].marginal = {0.9, 0.9, 0.0};
  ASSERT_OK(runtime.ingest().Push(std::move(bad), 10000ms));

  // The rejection is observable and nothing advanced.
  for (int i = 0; i < 200; ++i) {
    if (runtime.Stats().batches_rejected > 0) break;
    std::this_thread::sleep_for(5ms);
  }
  RuntimeStats mid = runtime.Stats();
  EXPECT_EQ(mid.batches_rejected, 1u);
  EXPECT_FALSE(mid.last_ingest_error.empty());
  EXPECT_EQ(mid.tick, 1u);

  // Retry with the pristine batch, then stream the rest: everything
  // applies exactly once and the results match the uninterrupted baseline.
  for (size_t i = 1; i < batches->size(); ++i) {
    ASSERT_OK(runtime.ingest().Push(std::move((*batches)[i]), 10000ms));
  }
  ASSERT_TRUE(runtime.WaitForTick(archive.horizon(), 10000ms));
  runtime.Stop();
  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.tick, archive.horizon());
  EXPECT_EQ(stats.batches_applied, 4u);
  EXPECT_EQ(stats.batches_rejected, 1u);
  auto latest = runtime.Latest();
  ASSERT_NE(latest, nullptr);
  const double* p = latest->Find(*id);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, expected.back());
}

}  // namespace
}  // namespace lahar
