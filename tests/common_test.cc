#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/interner.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"

namespace lahar {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::UnsafeQuery("x").code(), StatusCode::kUnsafeQuery);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Doubler(Result<int> in) {
  LAHAR_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Status::Internal("boom")).status().code(),
            StatusCode::kInternal);
}

TEST(InternerTest, EmptyStringIsIdZero) {
  Interner in;
  EXPECT_EQ(in.Intern(""), 0u);
}

TEST(InternerTest, InternIsIdempotentAndDense) {
  Interner in;
  SymbolId a = in.Intern("alpha");
  SymbolId b = in.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.Intern("alpha"), a);
  EXPECT_EQ(in.Name(a), "alpha");
  EXPECT_EQ(in.Name(b), "beta");
  EXPECT_EQ(in.size(), 3u);  // "", alpha, beta
}

TEST(InternerTest, LookupDoesNotIntern) {
  Interner in;
  EXPECT_EQ(in.Lookup("missing"), Interner::kNotFound);
  EXPECT_EQ(in.size(), 1u);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BelowCoversRange) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(RngTest, CategoricalMatchesWeights) {
  Rng rng(3);
  std::vector<double> w = {0.1, 0.6, 0.3};
  std::vector<int> counts(3, 0);
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) counts[rng.Categorical(w)]++;
  EXPECT_NEAR(counts[0] / double(kDraws), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / double(kDraws), 0.6, 0.02);
  EXPECT_NEAR(counts[2] / double(kDraws), 0.3, 0.02);
}

TEST(RngTest, CategoricalAllZeroReturnsSize) {
  Rng rng(4);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.Categorical(w), w.size());
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(5);
  Rng b = a.Split();
  EXPECT_NE(a.Next(), b.Next());
}

TEST(MatrixTest, MultiplyIdentity) {
  Matrix id(2, 2);
  id.At(0, 0) = id.At(1, 1) = 1.0;
  Matrix m(2, 2);
  m.At(0, 0) = 1;
  m.At(0, 1) = 2;
  m.At(1, 0) = 3;
  m.At(1, 1) = 4;
  Matrix r = m.Multiply(id);
  EXPECT_DOUBLE_EQ(r.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(r.At(1, 0), 3.0);
}

TEST(MatrixTest, LeftMultiplyIsRowVectorTimesMatrix) {
  Matrix m(2, 3);
  m.At(0, 0) = 1;
  m.At(0, 2) = 2;
  m.At(1, 1) = 3;
  std::vector<double> v = {2.0, 5.0};
  std::vector<double> r = m.LeftMultiply(v);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_DOUBLE_EQ(r[1], 15.0);
  EXPECT_DOUBLE_EQ(r[2], 4.0);
}

TEST(MatrixTest, LeftMultiplyIntoMatchesLeftMultiply) {
  Matrix m(3, 2);
  m.At(0, 0) = 0.5;
  m.At(0, 1) = 0.5;
  m.At(1, 0) = 0.25;
  m.At(2, 1) = 1.0;
  std::vector<double> v = {0.1, 0.7, 0.2};
  std::vector<double> expected = m.LeftMultiply(v);
  std::vector<double> out;
  m.LeftMultiplyInto(v, &out);
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], expected[i]);
}

TEST(MatrixTest, LeftMultiplyIntoReusesAndOverwritesOutput) {
  Matrix m(2, 2);
  m.At(0, 0) = 1;
  m.At(1, 1) = 2;
  std::vector<double> v = {3.0, 4.0};
  std::vector<double> out = {9.0, 9.0, 9.0};  // stale, larger than cols()
  m.LeftMultiplyInto(v, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 8.0);
}

TEST(MatrixTest, NormalizeRows) {
  Matrix m(2, 2);
  m.At(0, 0) = 2;
  m.At(0, 1) = 2;
  // Row 1 stays all-zero.
  m.NormalizeRows();
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.0);
}

TEST(MatrixTest, SumAndNormalizeVector) {
  std::vector<double> v = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(Sum(v), 4.0);
  Normalize(&v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

}  // namespace
}  // namespace lahar
