// Incremental-vs-batch equivalence for every query class served through
// the QuerySession layer (engine/session.h): a session advancing one tick
// at a time over a database built incrementally must report exactly the
// probabilities the batch engines compute over the finished archive.
//
// For the exact engines (Regular, Extended Regular, Safe) "exactly" means
// EXPECT_EQ on doubles — the incremental path must perform the same IEEE
// operations in the same order as the batch path. Sampling sessions are
// compared against brute-force enumeration within the estimator tolerance.
//
// Both databases in each test are built by the same recipe code so their
// contents are bit-identical; only the interleaving of appends and
// evaluation differs.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/lahar.h"
#include "engine/reference.h"
#include "engine/session.h"
#include "engine/streaming.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::MustParse;
using ::lahar::testing::StepDist;

// Creates a stream with its full domain interned up front and no timesteps
// yet, so batch and live databases are fed by the exact same AppendStep
// calls (the batch one all at once, the live one a tick at a time).
StreamId AddEmptyStream(EventDatabase* db, const std::string& type,
                        const std::string& key,
                        const std::vector<std::string>& domain) {
  lahar::testing::DeclareUnarySchema(db, type);
  Stream s(db->interner().Intern(type), {db->Sym(key)}, 1, 0,
           /*markovian=*/false);
  for (const std::string& d : domain) s.InternTuple({db->Sym(d)});
  auto id = db->AddStream(std::move(s));
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  return *id;
}

void AppendStep(EventDatabase* db, StreamId id, const StepDist& step) {
  const Stream& s = db->stream(id);
  std::vector<double> dist(s.domain_size(), 0.0);
  double total = 0;
  for (const auto& [name, p] : step) {
    dist[s.LookupTuple({db->Sym(name)})] += p;
    total += p;
  }
  dist[kBottom] = 1.0 - total;
  ASSERT_OK(db->AppendMarginal(id, dist));
}

TEST(SessionEquivalence, RegularIndependentMatchesBatchBitwise) {
  const std::vector<StepDist> steps = {
      {{"a", 0.7}, {"b", 0.2}}, {{"b", 0.6}, {"a", 0.3}}, {{"a", 0.9}},
      {{"b", 0.5}},             {{"a", 0.4}, {"b", 0.4}}, {{"a", 0.1}},
  };
  const std::string query = "At('Joe', l : l = 'a')";

  EventDatabase batch;
  StreamId bid = AddEmptyStream(&batch, "At", "Joe", {"a", "b"});
  for (const StepDist& s : steps) AppendStep(&batch, bid, s);
  Lahar lahar(&batch);
  auto answer = lahar.Run(query);
  ASSERT_OK(answer.status());
  EXPECT_EQ(answer->engine, EngineKind::kRegular);

  EventDatabase live;
  StreamId lid = AddEmptyStream(&live, "At", "Joe", {"a", "b"});
  Lahar serving(&live);
  auto session = serving.OpenSession(query);
  ASSERT_OK(session.status());
  EXPECT_EQ((*session)->query_class(), QueryClass::kRegular);
  EXPECT_EQ((*session)->engine_kind(), EngineKind::kRegular);
  EXPECT_TRUE((*session)->exact());
  for (size_t t = 1; t <= steps.size(); ++t) {
    AppendStep(&live, lid, steps[t - 1]);
    auto p = (*session)->Advance();
    ASSERT_OK(p.status());
    EXPECT_EQ((*session)->time(), t);
    EXPECT_EQ(*p, answer->probs[t]) << "t=" << t;
  }
}

TEST(SessionEquivalence, RegularMarkovMatchesBatchBitwise) {
  // Sequence query over one Markovian stream: the per-tick transition uses
  // the CPT arriving with the tick.
  auto add_markov = [](EventDatabase* db) {
    lahar::testing::DeclareUnarySchema(db, "At");
    Stream s(db->interner().Intern("At"), {db->Sym("Sue")}, 1, 0,
             /*markovian=*/true);
    s.InternTuple({db->Sym("a")});
    s.InternTuple({db->Sym("b")});
    auto id = db->AddStream(std::move(s));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  };
  Matrix cpt(3, 3, 0.0);
  cpt.At(0, 0) = 1.0;  // bottom stays bottom
  cpt.At(1, 1) = 0.8;
  cpt.At(1, 2) = 0.2;
  cpt.At(2, 1) = 0.3;
  cpt.At(2, 2) = 0.7;
  const std::vector<double> initial = {0.1, 0.6, 0.3};
  const Timestamp kT = 5;
  const std::string query =
      "At('Sue', l1 : l1 = 'a'); At('Sue', l2 : l2 = 'b')";

  EventDatabase batch;
  StreamId bid = add_markov(&batch);
  ASSERT_OK(batch.AppendInitial(bid, initial));
  for (Timestamp t = 2; t <= kT; ++t) {
    ASSERT_OK(batch.AppendMarkovStep(bid, cpt));
  }
  Lahar lahar(&batch);
  auto answer = lahar.Run(query);
  ASSERT_OK(answer.status());
  EXPECT_EQ(answer->engine, EngineKind::kRegular);

  EventDatabase live;
  StreamId lid = add_markov(&live);
  Lahar serving(&live);
  auto session = serving.OpenSession(query);
  ASSERT_OK(session.status());
  for (Timestamp t = 1; t <= kT; ++t) {
    if (t == 1) {
      ASSERT_OK(live.AppendInitial(lid, initial));
    } else {
      ASSERT_OK(live.AppendMarkovStep(lid, cpt));
    }
    auto p = (*session)->Advance();
    ASSERT_OK(p.status());
    EXPECT_EQ(*p, answer->probs[t]) << "t=" << t;
  }
}

TEST(SessionEquivalence, ExtendedMatchesBatchBitwise) {
  // Shared variable x grounds to one chain per key; the union over chains
  // must combine in the same order incrementally as in batch mode.
  const std::vector<std::string> keys = {"Joe", "Sue", "Bob"};
  const std::vector<std::vector<StepDist>> steps = {
      {{{"a", 0.5}, {"b", 0.3}}, {{"b", 0.6}}, {{"a", 0.2}, {"b", 0.7}},
       {{"b", 0.1}}, {{"a", 0.9}}},
      {{{"b", 0.4}}, {{"a", 0.5}, {"b", 0.2}}, {{"b", 0.3}},
       {{"a", 0.8}}, {{"b", 0.5}}},
      {{{"a", 0.1}}, {{"b", 0.9}}, {{"a", 0.4}, {"b", 0.4}},
       {{"b", 0.6}}, {{"a", 0.3}}},
  };
  const std::string query = "At(x, l1 : l1 = 'a'); At(x, l2 : l2 = 'b')";

  EventDatabase batch;
  std::vector<StreamId> bids;
  for (const std::string& k : keys) {
    bids.push_back(AddEmptyStream(&batch, "At", k, {"a", "b"}));
  }
  for (size_t t = 0; t < steps[0].size(); ++t) {
    for (size_t i = 0; i < keys.size(); ++i) {
      AppendStep(&batch, bids[i], steps[i][t]);
    }
  }
  Lahar lahar(&batch);
  auto answer = lahar.Run(query);
  ASSERT_OK(answer.status());
  EXPECT_EQ(answer->engine, EngineKind::kExtendedRegular);

  EventDatabase live;
  std::vector<StreamId> lids;
  for (const std::string& k : keys) {
    lids.push_back(AddEmptyStream(&live, "At", k, {"a", "b"}));
  }
  Lahar serving(&live);
  auto session = serving.OpenSession(query);
  ASSERT_OK(session.status());
  EXPECT_EQ((*session)->query_class(), QueryClass::kExtendedRegular);
  EXPECT_EQ((*session)->num_units(), keys.size());
  for (size_t t = 1; t <= steps[0].size(); ++t) {
    for (size_t i = 0; i < keys.size(); ++i) {
      AppendStep(&live, lids[i], steps[i][t - 1]);
    }
    auto p = (*session)->Advance();
    ASSERT_OK(p.status());
    EXPECT_EQ(*p, answer->probs[t]) << "t=" << t;
  }
}

TEST(SessionEquivalence, SurvivesMidStreamDomainGrowthBitwise) {
  // Interning a new tuple mid-stream grows the stream's domain past the
  // session's symbol table. The chain extends its own table copy-on-grow
  // (SymbolTable::WithGrownDomains); because 'c' first matches a subgoal
  // only after the growth, its symbol mask falls outside the compiled
  // kernel's alphabet and the chain dematerializes to the map path for the
  // rest of its life. The batch engine, created after the growth, compiles
  // over the full domain and stays on the kernel — the two paths must
  // still agree bit-for-bit (the kernel and map paths are exact
  // reorderings of the same IEEE operations).
  const std::string query = "At('Joe', l1 : l1 = 'b'); At('Joe', l2 : l2 = 'c')";
  const std::vector<StepDist> head = {{{"a", 0.6}, {"b", 0.3}},
                                      {{"b", 0.5}}};
  const std::vector<StepDist> tail = {{{"c", 0.4}, {"b", 0.2}},
                                      {{"a", 0.3}, {"c", 0.3}},
                                      {{"b", 0.8}}};

  auto build = [&](EventDatabase* db, StreamId* id_out) {
    *id_out = AddEmptyStream(db, "At", "Joe", {"a", "b"});
  };
  auto grow = [&](EventDatabase* db, StreamId id) {
    db->stream(id).InternTuple({db->Sym("c")});
  };

  EventDatabase batch;
  StreamId bid;
  build(&batch, &bid);
  for (const StepDist& s : head) AppendStep(&batch, bid, s);
  grow(&batch, bid);
  for (const StepDist& s : tail) AppendStep(&batch, bid, s);
  Lahar lahar(&batch);
  auto answer = lahar.Run(query);
  ASSERT_OK(answer.status());

  EventDatabase live;
  StreamId lid;
  build(&live, &lid);
  Lahar serving(&live);
  auto session = serving.OpenSession(query);
  ASSERT_OK(session.status());
  auto* streaming = dynamic_cast<StreamingSession*>(session->get());
  ASSERT_NE(streaming, nullptr);
  Timestamp t = 0;
  for (const StepDist& s : head) {
    AppendStep(&live, lid, s);
    auto p = (*session)->Advance();
    ASSERT_OK(p.status());
    EXPECT_EQ(*p, answer->probs[++t]) << "t=" << t;
  }
  EXPECT_EQ(streaming->engine().num_compiled(), 1u);
  grow(&live, lid);  // the alphabet guard trips on the next Advance
  for (const StepDist& s : tail) {
    AppendStep(&live, lid, s);
    auto p = (*session)->Advance();
    ASSERT_OK(p.status());
    EXPECT_EQ(*p, answer->probs[++t]) << "t=" << t;
  }
  // The growth really did force the kernel -> map fallback.
  EXPECT_EQ(streaming->engine().num_compiled(), 0u);
}

TEST(SessionEquivalence, SafePlanMatchesBatchBitwise) {
  // Safe query (Ex. 3.17 shape): seq over a reg subplan with a witness
  // stream. The incremental session extends the memoized tables by one
  // column per tick; every P[q@t] must match the batch run exactly.
  const std::string query = "R(x, u1); S(x, u2); T('a', y)";
  const std::vector<std::vector<StepDist>> r_steps = {
      {{{"u", 0.5}}, {{"u", 0.4}}, {}, {{"u", 0.6}}},
      {{{"u", 0.3}}, {}, {{"u", 0.7}}, {{"u", 0.2}}},
  };
  const std::vector<std::vector<StepDist>> s_steps = {
      {{}, {{"v", 0.6}}, {{"v", 0.3}}, {{"v", 0.5}}},
      {{{"v", 0.2}}, {{"v", 0.8}}, {}, {{"v", 0.4}}},
  };
  const std::vector<StepDist> t_steps = {
      {}, {{"w", 0.5}}, {{"w", 0.7}}, {{"w", 0.4}}};
  const size_t kT = t_steps.size();

  auto build = [&](EventDatabase* db, std::vector<StreamId>* ids) {
    ids->push_back(AddEmptyStream(db, "R", "k1", {"u"}));
    ids->push_back(AddEmptyStream(db, "R", "k2", {"u"}));
    ids->push_back(AddEmptyStream(db, "S", "k1", {"v"}));
    ids->push_back(AddEmptyStream(db, "S", "k2", {"v"}));
    ids->push_back(AddEmptyStream(db, "T", "a", {"w"}));
  };
  auto append_tick = [&](EventDatabase* db, const std::vector<StreamId>& ids,
                         size_t t) {
    AppendStep(db, ids[0], r_steps[0][t]);
    AppendStep(db, ids[1], r_steps[1][t]);
    AppendStep(db, ids[2], s_steps[0][t]);
    AppendStep(db, ids[3], s_steps[1][t]);
    AppendStep(db, ids[4], t_steps[t]);
  };

  EventDatabase batch;
  std::vector<StreamId> bids;
  build(&batch, &bids);
  for (size_t t = 0; t < kT; ++t) append_tick(&batch, bids, t);
  Lahar lahar(&batch);
  auto answer = lahar.Run(query);
  ASSERT_OK(answer.status());
  EXPECT_EQ(answer->engine, EngineKind::kSafePlan);
  EXPECT_TRUE(answer->exact);

  EventDatabase live;
  std::vector<StreamId> lids;
  build(&live, &lids);
  Lahar serving(&live);
  auto session = serving.OpenSession(query);
  ASSERT_OK(session.status());
  EXPECT_EQ((*session)->query_class(), QueryClass::kSafe);
  EXPECT_EQ((*session)->engine_kind(), EngineKind::kSafePlan);
  EXPECT_TRUE((*session)->exact());
  // Units are the plan's independent grounding groups (one per key of the
  // projected variable x), not a single sequential unit.
  EXPECT_EQ((*session)->num_units(), 2u);
  for (size_t t = 1; t <= kT; ++t) {
    append_tick(&live, lids, t - 1);
    auto p = (*session)->Advance();
    ASSERT_OK(p.status());
    EXPECT_EQ((*session)->time(), t);
    EXPECT_EQ(*p, answer->probs[t]) << "t=" << t;
  }
}

TEST(SessionEquivalence, SafePlanLongHorizonTightCapsMatchesBatchBitwise) {
  // Long-horizon safe serving with deliberately tiny cache capacities: the
  // direct-mapped seq memo and the reg-leaf row arena must evict constantly
  // and still reproduce the default-capacity batch run bit for bit —
  // capacity knobs trade recompute time, never answers. The witness stream
  // fires sparsely so the sparse kernels skip real zero gaps, and the
  // generated marginals include runs of certain-bottom at the start (the
  // all-bottom precursor boundary).
  const std::string query = "R(x, u1); S(x, u2); T('a', y)";
  constexpr size_t kT = 320;

  // Deterministic pseudo-random feed shared by both databases.
  auto prob = [](size_t t, size_t stream) {
    uint64_t h = (t * 1000003ULL + stream) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return 0.15 + 0.5 * static_cast<double>(h >> 40) / 16777216.0;
  };
  auto build = [&](EventDatabase* db, std::vector<StreamId>* ids) {
    ids->push_back(AddEmptyStream(db, "R", "k1", {"u"}));
    ids->push_back(AddEmptyStream(db, "R", "k2", {"u"}));
    ids->push_back(AddEmptyStream(db, "S", "k1", {"v"}));
    ids->push_back(AddEmptyStream(db, "S", "k2", {"v"}));
    ids->push_back(AddEmptyStream(db, "T", "a", {"w"}));
  };
  auto append_tick = [&](EventDatabase* db, const std::vector<StreamId>& ids,
                         size_t t) {
    // First 8 ticks: everything bottom (the precursor boundary).
    AppendStep(db, ids[0], t < 8 ? StepDist{} : StepDist{{"u", prob(t, 0)}});
    AppendStep(db, ids[1], t < 8 ? StepDist{} : StepDist{{"u", prob(t, 1)}});
    AppendStep(db, ids[2], t < 8 ? StepDist{} : StepDist{{"v", prob(t, 2)}});
    AppendStep(db, ids[3], t < 8 ? StepDist{} : StepDist{{"v", prob(t, 3)}});
    // Sparse witness: one candidate event every 6 ticks.
    AppendStep(db, ids[4],
               t >= 8 && t % 6 == 2 ? StepDist{{"w", 0.45}} : StepDist{});
  };

  EventDatabase batch;
  std::vector<StreamId> bids;
  build(&batch, &bids);
  for (size_t t = 0; t < kT; ++t) append_tick(&batch, bids, t);
  Lahar lahar(&batch);  // default capacities, batch Run
  auto answer = lahar.Run(query);
  ASSERT_OK(answer.status());
  EXPECT_EQ(answer->engine, EngineKind::kSafePlan);

  EventDatabase live;
  std::vector<StreamId> lids;
  build(&live, &lids);
  LaharOptions tight;
  tight.plan.safe.seq_memo_capacity = 8;
  tight.plan.safe.reg_row_capacity = 4;
  tight.plan.safe.reg_keyframe_interval = 32;
  Lahar serving(&live, tight);
  auto session = serving.OpenSession(query);
  ASSERT_OK(session.status());
  for (size_t t = 1; t <= kT; ++t) {
    append_tick(&live, lids, t - 1);
    auto p = (*session)->Advance();
    ASSERT_OK(p.status());
    EXPECT_EQ(*p, answer->probs[t]) << "t=" << t;
  }
  // The tiny caches really were exercised: the arena evicted and rebuilt
  // rows, and counters made it to the session surface.
  SafeMemoStats ms = (*session)->MemoStats();
  EXPECT_GT(ms.row_evictions, 0u);
  EXPECT_GT(ms.memo_evictions, 0u);
  EXPECT_LE(ms.memo_entries, 8u);  // the direct-mapped memo never outgrows
                                   // its 8 slots
}

TEST(SessionEquivalence, SamplingSessionTracksBruteForce) {
  // Unsafe query (non-local WHERE): hosts as an approximate standing query
  // through a SamplingSession. Compared against exhaustive enumeration
  // within the Hoeffding tolerance for the sample count.
  const std::string query = "(R(x, u1); S(y, u2)) WHERE u1 = u2";
  const std::vector<StepDist> r_steps = {
      {{"m", 0.6}}, {{"n", 0.5}}, {{"m", 0.4}}};
  const std::vector<StepDist> s_steps = {
      {{"n", 0.3}}, {{"m", 0.7}}, {{"m", 0.5}}};

  EventDatabase batch;
  StreamId br = AddEmptyStream(&batch, "R", "k1", {"m", "n"});
  StreamId bs = AddEmptyStream(&batch, "S", "k2", {"m", "n"});
  for (size_t t = 0; t < r_steps.size(); ++t) {
    AppendStep(&batch, br, r_steps[t]);
    AppendStep(&batch, bs, s_steps[t]);
  }
  QueryPtr q = MustParse(&batch, query);
  auto want = BruteForceProbabilities(*q, batch);
  ASSERT_OK(want.status());

  EventDatabase live;
  StreamId lr = AddEmptyStream(&live, "R", "k1", {"m", "n"});
  StreamId ls = AddEmptyStream(&live, "S", "k2", {"m", "n"});
  LaharOptions options;
  options.sampling.num_samples = 20000;
  options.sampling.seed = 7;
  Lahar serving(&live, options);
  auto session = serving.OpenSession(query);
  ASSERT_OK(session.status());
  EXPECT_EQ((*session)->query_class(), QueryClass::kUnsafe);
  EXPECT_EQ((*session)->engine_kind(), EngineKind::kSampling);
  EXPECT_FALSE((*session)->exact());
  EXPECT_EQ((*session)->num_units(), 20000u);
  for (size_t t = 1; t <= r_steps.size(); ++t) {
    AppendStep(&live, lr, r_steps[t - 1]);
    AppendStep(&live, ls, s_steps[t - 1]);
    auto p = (*session)->Advance();
    ASSERT_OK(p.status());
    EXPECT_NEAR(*p, (*want)[t], 0.02) << "t=" << t;
  }
}

TEST(SessionEquivalence, StrictModeRejectionNamesTheClass) {
  EventDatabase live;
  AddEmptyStream(&live, "R", "k1", {"m"});
  AddEmptyStream(&live, "S", "k2", {"m"});
  LaharOptions options;
  options.allow_sampling_fallback = false;
  Lahar serving(&live, options);
  auto session = serving.OpenSession("(R(x, u1); S(y, u2)) WHERE u1 = u2");
  ASSERT_FALSE(session.ok());
  const std::string* cls = session.status().GetPayload(kQueryClassPayload);
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(*cls, "Unsafe");
}

}  // namespace
}  // namespace lahar
