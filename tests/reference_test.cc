#include <gtest/gtest.h>

#include "engine/reference.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddCertainStream;
using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddRelation;
using ::lahar::testing::MustParse;

// Returns the single world of a fully deterministic database.
World OnlyWorld(const EventDatabase& db) {
  Rng rng(0);
  return SampleWorld(db, &rng);
}

std::vector<bool> Satisfied(EventDatabase* db, const std::string& text) {
  QueryPtr q = MustParse(db, text);
  EXPECT_NE(q, nullptr);
  EXPECT_OK(ValidateQuery(*q, *db));
  auto sat = SatisfiedAt(*q, *db, OnlyWorld(*db));
  EXPECT_TRUE(sat.ok()) << sat.status().ToString();
  return *sat;
}

TEST(ReferenceTest, SingleSubgoalMatchesEachOccurrence) {
  EventDatabase db;
  AddCertainStream(&db, "R", "k", {"a", "b", "a"});
  auto sat = Satisfied(&db, "R(k, x : x = 'a')");
  EXPECT_EQ(sat, (std::vector<bool>{false, true, false, true}));
}

TEST(ReferenceTest, Example311FilterVersusSelect) {
  // The paper's Ex. 3.11: input R(a,1), R(c,2), R(b,3).
  EventDatabase db;
  AddCertainStream(&db, "R", "k", {"a", "c", "b"});
  // q_f = R(a); R(b): the R(c) event does not block.
  auto qf = Satisfied(&db, "R(k, x : x = 'a'); R(k, y : y = 'b')");
  EXPECT_EQ(qf, (std::vector<bool>{false, false, false, true}));
  // q_s = sigma_{y='b'}(R(a); R(y)): R(c) is the immediate successor and
  // fails the selection, so q_s is never satisfied.
  auto qs = Satisfied(&db, "(R(k, x : x = 'a'); R(k, y)) WHERE y = 'b'");
  EXPECT_EQ(qs, (std::vector<bool>{false, false, false, false}));
}

TEST(ReferenceTest, SequenceSkipsBottomTimesteps) {
  EventDatabase db;
  AddCertainStream(&db, "R", "k", {"a", "", "", "b"});
  auto sat = Satisfied(&db, "R(k, x : x = 'a'); R(k, y : y = 'b')");
  EXPECT_EQ(sat, (std::vector<bool>{false, false, false, false, true}));
}

TEST(ReferenceTest, JoeCoffeeQuery) {
  // Ex. 2.2: office, coffee room, office.
  EventDatabase db;
  AddCertainStream(&db, "At", "Joe",
                   {"220", "hall", "coffee", "hall", "220", "220"});
  AddRelation(&db, "CRoom", {{"coffee"}});
  auto sat = Satisfied(
      &db, "At('Joe', l1 : l1 = '220'); At('Joe', l2 : CRoom(l2)); "
           "At('Joe', l3 : l3 = '220')");
  // Coffee at t=3; the next 220 sighting is t=5.
  EXPECT_EQ(sat, (std::vector<bool>{false, false, false, false, false, true,
                                    false}));
}

TEST(ReferenceTest, KleenePlusChainsThroughHallways) {
  EventDatabase db;
  AddCertainStream(&db, "At", "Joe", {"a", "h1", "h2", "c"});
  AddRelation(&db, "Hallway", {{"h1"}, {"h2"}});
  auto sat = Satisfied(&db,
                       "At('Joe', l1 : l1 = 'a'); "
                       "At('Joe', l2)+{ : Hallway(l2)}; "
                       "At('Joe', l3 : l3 = 'c')");
  EXPECT_EQ(sat, (std::vector<bool>{false, false, false, false, true}));
}

TEST(ReferenceTest, KleeneBlocksOnNonHallwayImmediateSuccessor) {
  // After 'a', the immediate At successor is an office: the Kleene cannot
  // start (hallway chain broken), so the query never fires.
  EventDatabase db;
  AddCertainStream(&db, "At", "Joe", {"a", "office", "h2", "c"});
  AddRelation(&db, "Hallway", {{"h1"}, {"h2"}});
  auto sat = Satisfied(&db,
                       "At('Joe', l1 : l1 = 'a'); "
                       "At('Joe', l2)+{ : Hallway(l2)}; "
                       "At('Joe', l3 : l3 = 'c')");
  EXPECT_EQ(sat, (std::vector<bool>{false, false, false, false, false}));
}

TEST(ReferenceTest, KleeneMultipleUnfoldingsEachFire) {
  EventDatabase db;
  AddCertainStream(&db, "At", "Joe", {"h1", "h1", "h1"});
  AddRelation(&db, "Hallway", {{"h1"}});
  auto sat = Satisfied(&db, "At('Joe', l)+{ : Hallway(l)}");
  EXPECT_EQ(sat, (std::vector<bool>{false, true, true, true}));
}

TEST(ReferenceTest, JoinAcrossStreamsViaSharedVariable) {
  EventDatabase db;
  AddCertainStream(&db, "At", "Joe", {"a", "b"});
  AddCertainStream(&db, "At", "Sue", {"x", "a"});
  // Anyone at 'a' then at 'b': only Joe's trace satisfies this.
  auto sat = Satisfied(&db, "At(p, l1 : l1 = 'a'); At(p, l2 : l2 = 'b')");
  EXPECT_EQ(sat, (std::vector<bool>{false, false, true}));
}

TEST(ReferenceTest, ResultEventsCarryBindings) {
  EventDatabase db;
  AddCertainStream(&db, "At", "Joe", {"a", "b"});
  QueryPtr q = MustParse(&db, "At(p, l)");
  auto events = EvaluateOnWorld(*q, db, OnlyWorld(db));
  ASSERT_OK(events.status());
  ASSERT_EQ(events->size(), 2u);
  SymbolId p = db.interner().Intern("p");
  for (const auto& e : *events) {
    EXPECT_EQ(e.binding.at(p), db.Sym("Joe"));
  }
}

TEST(ReferenceTest, SimultaneousEventsBothMatch) {
  EventDatabase db;
  AddCertainStream(&db, "At", "Joe", {"a", "c"});
  AddCertainStream(&db, "At", "Sue", {"b", "c"});
  auto sat = Satisfied(&db, "At(p, l : l = 'c')");
  EXPECT_EQ(sat, (std::vector<bool>{false, false, true}));
  QueryPtr q = MustParse(&db, "At(p, l : l = 'c')");
  auto events = EvaluateOnWorld(*q, db, OnlyWorld(db));
  ASSERT_OK(events.status());
  EXPECT_EQ(events->size(), 2u);  // one per person
}

TEST(ReferenceTest, BruteForceSingleEventProbability) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k", {{{"a", 0.4}, {"b", 0.5}}});
  QueryPtr q = MustParse(&db, "R(k, x : x = 'a')");
  auto probs = BruteForceProbabilities(*q, db);
  ASSERT_OK(probs.status());
  EXPECT_NEAR((*probs)[1], 0.4, 1e-12);
}

TEST(ReferenceTest, BruteForceSequenceProbability) {
  EventDatabase db;
  // P[a at 1] = 0.5, P[b at 2] = 0.5, independent: P[q@2] = 0.25.
  AddIndependentStream(&db, "R", "k", {{{"a", 0.5}}, {{"b", 0.5}}});
  QueryPtr q = MustParse(&db, "R(k, x : x = 'a'); R(k, y : y = 'b')");
  auto probs = BruteForceProbabilities(*q, db);
  ASSERT_OK(probs.status());
  EXPECT_NEAR((*probs)[1], 0.0, 1e-12);
  EXPECT_NEAR((*probs)[2], 0.25, 1e-12);
}

}  // namespace
}  // namespace lahar
