#include <gtest/gtest.h>

#include "engine/lahar.h"
#include "engine/streaming.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;

TEST(StreamAppendTest, IndependentAppendExtendsHorizon) {
  EventDatabase db;
  StreamId id = AddIndependentStream(&db, "R", "k", {{{"a", 0.5}}});
  ASSERT_OK(db.AppendMarginal(id, {0.2, 0.8}));
  EXPECT_EQ(db.stream(id).horizon(), 2u);
  EXPECT_EQ(db.horizon(), 2u);
  EXPECT_NEAR(db.stream(id).ProbAt(2, 1), 0.8, 1e-12);
  // Markov-style append on an independent stream fails.
  EXPECT_FALSE(db.AppendMarkovStep(id, Matrix(2, 2, 0.5)).ok());
  // Bad distribution fails.
  EXPECT_FALSE(db.AppendMarginal(id, {0.9, 0.9}).ok());
}

TEST(StreamAppendTest, MarkovAppendChainsMarginals) {
  EventDatabase db;
  StreamId id = AddMarkovStream(&db, "At", "Joe", {"a", "b"}, 1, 0.9);
  Matrix cpt(3, 3, 0.0);
  cpt.At(0, 0) = 1.0;
  cpt.At(1, 1) = 0.9;
  cpt.At(1, 2) = 0.1;
  cpt.At(2, 2) = 1.0;
  ASSERT_OK(db.AppendMarkovStep(id, cpt));
  const Stream& s = db.stream(id);
  EXPECT_EQ(s.horizon(), 2u);
  // init uniform over {a, b}: P[a@2] = 0.5 * 0.9.
  EXPECT_NEAR(s.ProbAt(2, 1), 0.45, 1e-12);
  EXPECT_NEAR(s.ProbAt(2, 2), 0.55, 1e-12);
  EXPECT_FALSE(db.AppendMarkovStep(id, Matrix(2, 2, 0.5)).ok());  // bad shape
  EXPECT_FALSE(db.AppendMarginal(id, {1.0, 0, 0}).ok());  // wrong kind
}

TEST(StreamingSessionTest, MatchesBatchEvaluation) {
  // Build the full data once for the batch answer...
  EventDatabase batch_db;
  AddIndependentStream(&batch_db, "At", "Joe",
                       {{{"a", 0.7}, {"b", 0.2}},
                        {{"b", 0.6}, {"a", 0.3}},
                        {{"b", 0.5}},
                        {{"a", 0.9}}});
  const std::string query =
      "At('Joe', l1 : l1 = 'a'); At('Joe', l2 : l2 = 'b')";
  Lahar lahar(&batch_db);
  auto batch = lahar.Run(query);
  ASSERT_OK(batch.status());

  // ...then feed the same distributions one timestep at a time.
  EventDatabase db;
  lahar::testing::DeclareUnarySchema(&db, "At");
  Stream s(db.interner().Intern("At"), {db.Sym("Joe")}, 1, 0, false);
  DomainIndex a = s.InternTuple({db.Sym("a")});
  DomainIndex b = s.InternTuple({db.Sym("b")});
  auto id = db.AddStream(std::move(s));
  ASSERT_TRUE(id.ok());
  auto session = StreamingSession::Create(&db, query);
  ASSERT_OK(session.status());

  auto dist = [&](double pa, double pb) {
    std::vector<double> d(3, 0.0);
    d[a] = pa;
    d[b] = pb;
    d[kBottom] = 1.0 - pa - pb;
    return d;
  };
  const std::vector<std::vector<double>> steps = {
      dist(0.7, 0.2), dist(0.3, 0.6), dist(0.0, 0.5), dist(0.9, 0.0)};
  for (size_t i = 0; i < steps.size(); ++i) {
    ASSERT_OK(db.AppendMarginal(*id, steps[i]));
    auto p = session->Advance();
    ASSERT_OK(p.status());
    EXPECT_NEAR(*p, batch->probs[i + 1], 1e-12) << "t=" << i + 1;
    EXPECT_EQ(session->time(), i + 1);
  }
}

TEST(StreamingSessionTest, MarkovStreamsAdvanceIncrementally) {
  EventDatabase db;
  StreamId id = AddMarkovStream(&db, "At", "Joe", {"room", "hall"}, 1, 0.9);
  auto session = StreamingSession::Create(
      &db, "At('Joe', l1 : l1 = 'room'); At('Joe', l2 : l2 = 'room')");
  ASSERT_OK(session.status());
  auto p1 = session->Advance();
  ASSERT_OK(p1.status());
  EXPECT_NEAR(*p1, 0.0, 1e-12);  // one step: no two-step sequence yet
  Matrix cpt(3, 3, 0.0);
  cpt.At(0, 0) = 1.0;
  cpt.At(1, 1) = 0.9;
  cpt.At(1, 2) = 0.1;
  cpt.At(2, 1) = 0.1;
  cpt.At(2, 2) = 0.9;
  ASSERT_OK(db.AppendMarkovStep(id, cpt));
  auto p2 = session->Advance();
  ASSERT_OK(p2.status());
  EXPECT_NEAR(*p2, 0.5 * 0.9, 1e-12);
}

TEST(StreamingSessionTest, ExtendedQueryTracksMultipleKeys) {
  EventDatabase db;
  // Mention 'b' with zero mass so the domain is fully interned up front.
  StreamId joe =
      AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}, {"b", 0.0}}});
  StreamId sue =
      AddIndependentStream(&db, "At", "Sue", {{{"a", 0.5}, {"b", 0.0}}});
  auto session = StreamingSession::Create(&db, "At(x, l : l = 'b')");
  ASSERT_OK(session.status());
  EXPECT_OK(session->Advance().status());
  ASSERT_OK(db.AppendMarginal(joe, {0.5, 0.0, 0.5}));
  ASSERT_OK(db.AppendMarginal(sue, {0.5, 0.0, 0.5}));
  auto p = session->Advance();
  ASSERT_OK(p.status());
  EXPECT_NEAR(*p, 1 - 0.5 * 0.5, 1e-12);  // either tag at 'b'
}

TEST(StreamingSessionTest, RejectsNonStreamableQueries) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 0.5}}});
  AddIndependentStream(&db, "S", "k1", {{{"v", 0.5}}});
  AddIndependentStream(&db, "T", "a", {{{"w", 0.5}}});
  // Safe but non-streamable: needs the archived history.
  auto safe = StreamingSession::Create(&db, "R(x, u1); S(x, u2); T('a', y)");
  EXPECT_FALSE(safe.ok());
  EXPECT_EQ(safe.status().code(), StatusCode::kUnsafeQuery);
  // The rejection carries the query class so callers can route the query
  // to an archive-backed or sampling engine instead.
  const std::string* cls = safe.status().GetPayload(kQueryClassPayload);
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(*cls, "Safe");
  // The class also shows up in the rendered message.
  EXPECT_NE(safe.status().ToString().find("query_class=Safe"),
            std::string::npos);

  auto unsafe = StreamingSession::Create(
      &db, "(R(x, u1); S(y, u2)) WHERE u1 = u2");
  EXPECT_FALSE(unsafe.ok());
  const std::string* ucls = unsafe.status().GetPayload(kQueryClassPayload);
  ASSERT_NE(ucls, nullptr);
  EXPECT_EQ(*ucls, "Unsafe");
}

TEST(PruneTest, DropsSmallEntriesAndStaysStochastic) {
  EventDatabase db;
  lahar::testing::DeclareUnarySchema(&db, "At");
  Stream s(db.interner().Intern("At"), {db.Sym("Joe")}, 1, 3, true);
  s.InternTuple({db.Sym("a")});
  s.InternTuple({db.Sym("b")});
  ASSERT_OK(s.SetInitial({0.0, 0.5, 0.5}));
  Matrix cpt(3, 3, 0.0);
  cpt.At(0, 0) = 1.0;
  cpt.At(1, 1) = 0.98;
  cpt.At(1, 2) = 0.02;  // prunable
  cpt.At(2, 1) = 0.5;
  cpt.At(2, 2) = 0.5;
  ASSERT_OK(s.SetCpt(1, cpt));
  ASSERT_OK(s.SetCpt(2, cpt));
  ASSERT_OK(s.FinalizeMarkov());
  size_t before = 0, after = 0;
  ASSERT_OK(s.PruneCpts(0.05, &before, &after));
  EXPECT_EQ(before, 10u);  // 5 nonzero entries per CPT
  EXPECT_EQ(after, 8u);    // the two 0.02 entries dropped
  EXPECT_NEAR(s.CptAt(1).At(1, 1), 1.0, 1e-12);  // renormalized
  for (Timestamp t = 1; t <= 3; ++t) {
    EXPECT_NEAR(Sum(s.MarginalAt(t)), 1.0, 1e-9);
  }
  EXPECT_OK(s.Validate());
}

TEST(PruneTest, ZeroEpsilonIsIdentity) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"a", "b", "c"}, 4, 0.7);
  Stream& s = db.stream(0);
  double p_before = s.CptAt(2).At(1, 2);
  size_t before = 0, after = 0;
  ASSERT_OK(s.PruneCpts(0.0, &before, &after));
  EXPECT_EQ(before, after);
  EXPECT_NEAR(s.CptAt(2).At(1, 2), p_before, 1e-12);
}

TEST(PruneTest, RequiresMarkovianStream) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k", {{{"a", 0.5}}});
  EXPECT_FALSE(db.stream(0).PruneCpts(0.1).ok());
}

}  // namespace
}  // namespace lahar
