#include <gtest/gtest.h>

#include "metrics/quality.h"

namespace lahar {
namespace {

TEST(MetricsTest, DetectionEventsClusterRuns) {
  std::vector<bool> detected = {false, true, true, false, true, false, true};
  EXPECT_EQ(DetectionEvents(detected), (std::vector<Timestamp>{1, 4, 6}));
}

TEST(MetricsTest, ThresholdIsStrict) {
  std::vector<double> probs = {0, 0.5, 0.51, 0.2};
  EXPECT_EQ(DetectionEvents(probs, 0.5), (std::vector<Timestamp>{2}));
  EXPECT_EQ(DetectionEvents(probs, 0.1).size(), 1u);  // run starts at 1
}

TEST(MetricsTest, PerfectDetection) {
  QualityScore s = ScoreEvents({10, 20}, {10, 20}, 0);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(MetricsTest, ToleranceWindowMatches) {
  QualityScore s = ScoreEvents({12}, {10}, 2);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  s = ScoreEvents({13}, {10}, 2);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_EQ(s.false_positives, 1u);
}

TEST(MetricsTest, MatchingIsOneToOne) {
  // Two detections near one truth event: only one true positive.
  QualityScore s = ScoreEvents({9, 11}, {10}, 2);
  EXPECT_EQ(s.true_positives, 1u);
  EXPECT_EQ(s.false_positives, 1u);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(MetricsTest, EmptyCasesAreWellDefined) {
  QualityScore s = ScoreEvents(std::vector<Timestamp>{}, {10}, 2);
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  s = ScoreEvents(std::vector<Timestamp>{}, std::vector<Timestamp>{}, 2);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  s = ScoreEvents({5}, std::vector<Timestamp>{}, 2);
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(MetricsTest, PrecisionRecallTradeoffWithThreshold) {
  // A strong true spike at 5, a weak true spike at 20, and noise at 10:
  // raising rho improves precision and lowers recall against {5, 20}.
  std::vector<double> probs(31, 0.0);
  probs[5] = 0.9;
  probs[10] = 0.1;  // noise
  probs[20] = 0.3;  // weak true event
  std::vector<Timestamp> truth = {5, 20};
  QualityScore low = Score(probs, 0.05, truth, 1);
  QualityScore high = Score(probs, 0.5, truth, 1);
  EXPECT_NEAR(low.precision, 2.0 / 3, 1e-12);
  EXPECT_NEAR(low.recall, 1.0, 1e-12);
  EXPECT_NEAR(high.precision, 1.0, 1e-12);
  EXPECT_NEAR(high.recall, 0.5, 1e-12);
}

TEST(MetricsTest, InjectSkewStaysWithinBounds) {
  Rng rng(8);
  std::vector<Timestamp> truth = {1, 15, 30};
  for (int i = 0; i < 100; ++i) {
    auto skewed = InjectSkew(truth, 5, 30, &rng);
    ASSERT_EQ(skewed.size(), truth.size());
    for (size_t j = 0; j < skewed.size(); ++j) {
      EXPECT_GE(skewed[j], 1u);
      EXPECT_LE(skewed[j], 30u);
    }
  }
}

TEST(MetricsTest, F1IsHarmonicMean) {
  QualityScore s = ScoreEvents({10, 50}, {10, 20, 30}, 1);
  // tp=1, precision=0.5, recall=1/3.
  EXPECT_NEAR(s.f1, 2 * 0.5 * (1.0 / 3) / (0.5 + 1.0 / 3), 1e-12);
}

}  // namespace
}  // namespace lahar
