// Concurrency stress for the streaming runtime, built to run under
// ThreadSanitizer (see the tsan-runtime test preset): ~32 mixed
// Regular / Extended Regular standing queries, 1000 simulated timesteps
// produced by sim/trace_generator, pushed from a separate producer thread
// through a deliberately tiny ingest queue so backpressure engages, stepped
// by a 4-thread shard pool — and every published probability asserted
// bit-identical (EXPECT_EQ on doubles) to a sequential StreamingSession
// replay of the same data.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine/streaming.h"
#include "runtime/executor.h"
#include "runtime/replay.h"
#include "sim/scenarios.h"
#include "test_util.h"

namespace lahar {
namespace {

using namespace std::chrono_literals;

constexpr size_t kTags = 4;
constexpr Timestamp kHorizon = 1000;

// Grounded (Regular, one chain) and ungrounded (Extended Regular, one chain
// per tag) query templates over the simulated building's relations.
std::vector<std::string> StandingQueries() {
  std::vector<std::string> queries;
  for (size_t i = 1; i <= kTags; ++i) {
    const std::string tag = "'tag" + std::to_string(i) + "'";
    queries.push_back("At(" + tag + ", l : Room(l))");
    queries.push_back("At(" + tag + ", l : Hallway(l))");
    queries.push_back("At(" + tag + ", l1 : NotRoom(l1)); At(" + tag +
                      ", l2 : Room(l2))");
    queries.push_back("At(" + tag + ", l1 : Hallway(l1)); At(" + tag +
                      ", l2 : Hallway(l2)); At(" + tag + ", l3 : Room(l3))");
    queries.push_back("(At(" + tag + ", l1); At(" + tag +
                      ", l2)) WHERE NotRoom(l1) AND Room(l2)");
    queries.push_back("At(" + tag + ", l1 : Room(l1)); At(" + tag +
                      ", l2 : NotRoom(l2)); At(" + tag + ", l3 : Room(l3))");
    queries.push_back("At(" + tag + ", l : NotRoom(l))");
  }
  queries.push_back("At(x, l : Room(l))");
  queries.push_back("At(x, l : Hallway(l))");
  queries.push_back("At(x, l1 : NotRoom(l1)); At(x, l2 : Room(l2))");
  queries.push_back("At(x, l1 : Hallway(l1)); At(x, l2 : Room(l2))");
  return queries;  // 7 * kTags + 4 = 32
}

TEST(RuntimeStressTest, ThousandTicksMatchSequentialReplayBitForBit) {
  PipelineConfig config;
  config.num_particles = 32;  // keep trace generation cheap; any output works
  auto scenario = RandomWalkScenario(kTags, kHorizon, /*seed=*/2008, config);
  ASSERT_OK(scenario.status());
  auto archive = scenario->BuildDatabase(StreamKind::kFiltered);
  ASSERT_OK(archive.status());
  ASSERT_EQ((*archive)->horizon(), kHorizon);

  const std::vector<std::string> queries = StandingQueries();
  ASSERT_EQ(queries.size(), 32u);

  // Sequential ground truth: one StreamingSession per query over the
  // archived data, advanced tick by tick on this thread.
  std::vector<std::vector<double>> expected(queries.size());
  size_t expected_chains = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto session = StreamingSession::Create(archive->get(), queries[i]);
    ASSERT_TRUE(session.ok())
        << session.status().ToString() << " for " << queries[i];
    expected_chains += session->num_chains();
    expected[i].reserve(kHorizon);
    for (Timestamp t = 1; t <= kHorizon; ++t) {
      auto p = session->Advance();
      ASSERT_OK(p.status());
      expected[i].push_back(*p);
    }
  }

  // Live side: replay the archive into a declarations-only clone through
  // the runtime's ingest queue.
  auto live = CloneDeclarations(**archive);
  ASSERT_OK(live.status());
  auto batches = ExtractBatches(**archive);
  ASSERT_OK(batches.status());
  ASSERT_EQ(batches->size(), kHorizon);

  RuntimeOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8;  // far fewer than 1000: producers must block
  StreamRuntime runtime(live->get(), options);
  std::vector<QueryId> ids;
  for (const std::string& q : queries) {
    auto id = runtime.Register(q);
    ASSERT_TRUE(id.ok()) << id.status().ToString() << " for " << q;
    ids.push_back(*id);
  }

  // The callback runs on the coordinator thread; Stop() joins it before
  // this thread reads `results`, so no extra synchronization is needed.
  std::vector<TickResult> results;
  results.reserve(kHorizon);
  runtime.SetTickCallback(
      [&](const TickResult& r) { results.push_back(r); });
  runtime.Start();

  std::thread producer([&] {
    for (TickBatch& b : *batches) {
      Status s = runtime.ingest().Push(std::move(b), 120000ms);
      EXPECT_OK(s);
    }
  });
  producer.join();
  ASSERT_TRUE(runtime.WaitForTick(kHorizon, 120000ms));
  runtime.Stop();

  ASSERT_EQ(results.size(), kHorizon);
  size_t mismatches = 0;
  for (size_t t = 0; t < results.size(); ++t) {
    ASSERT_EQ(results[t].t, t + 1);
    ASSERT_EQ(results[t].probs.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const double* p = results[t].Find(ids[i]);
      ASSERT_NE(p, nullptr);
      if (*p != expected[i][t] && ++mismatches <= 5) {
        ADD_FAILURE() << "mismatch: " << queries[i] << " at t=" << t + 1
                      << ": runtime=" << *p << " sequential=" << expected[i][t];
      }
    }
  }
  EXPECT_EQ(mismatches, 0u);

  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.ticks_processed, kHorizon);
  EXPECT_EQ(stats.num_queries, queries.size());
  EXPECT_EQ(stats.batches_applied, kHorizon);
  EXPECT_EQ(stats.batches_rejected, 0u);
  EXPECT_EQ(stats.queue_dropped, 0u);  // blocking Push never drops
  // Same chain layout as the sequential sessions (grounded queries run one
  // chain, ungrounded ones a chain per key binding).
  EXPECT_EQ(stats.total_chains, expected_chains);
  EXPECT_GT(stats.total_chains, queries.size());
}

// Mixed-class serving under churn: one standing query per class (Regular,
// Extended Regular, Safe plan, Unsafe-via-sampling) runs for the whole
// stream while a churn thread registers and drops extra queries
// concurrently with ingest. The exact sessions are asserted bit-identical
// to a sequential replay; the sampling session is asserted healthy (the
// interleaving of world-prefix extension differs between a live and an
// archived database, so its estimates are deterministic but not comparable
// across the two).
TEST(RuntimeStressTest, MixedClassWorkloadSurvivesConcurrentChurn) {
  constexpr size_t kMixedTags = 3;
  constexpr Timestamp kMixedHorizon = 120;
  PipelineConfig config;
  config.num_particles = 32;
  auto scenario =
      RandomWalkScenario(kMixedTags, kMixedHorizon, /*seed=*/7, config);
  ASSERT_OK(scenario.status());
  auto archive = scenario->BuildDatabase(StreamKind::kFiltered);
  ASSERT_OK(archive.status());

  LaharOptions session_options;
  session_options.plan.assume_distinct_keys = true;  // for the Safe query
  session_options.sampling.num_samples = 16;
  session_options.sampling.seed = 2008;

  // One stable query per class; `exact` marks the ones with a bit-identical
  // sequential replay.
  struct StableQuery {
    std::string text;
    std::string query_class;
    bool exact;
  };
  const std::vector<StableQuery> stable = {
      {"At('tag1', l : Room(l))", "Regular", true},
      {"At(x, l1 : NotRoom(l1)); At(x, l2 : Room(l2))", "ExtendedRegular",
       true},
      {"At(p, l1); At(p, l2); At(q, l3)", "Safe", true},
      {"(At(x, l1); At(y, l2)) WHERE l1 = l2", "Unsafe", false},
  };

  // Sequential ground truth for the exact classes over the archive.
  std::vector<std::vector<double>> expected(stable.size());
  {
    Lahar sequential(archive->get(), session_options);
    for (size_t i = 0; i < stable.size(); ++i) {
      if (!stable[i].exact) continue;
      auto session = sequential.OpenSession(stable[i].text);
      ASSERT_TRUE(session.ok())
          << session.status().ToString() << " for " << stable[i].text;
      for (Timestamp t = 1; t <= kMixedHorizon; ++t) {
        auto p = (*session)->Advance();
        ASSERT_OK(p.status());
        expected[i].push_back(*p);
      }
    }
  }

  auto live = CloneDeclarations(**archive);
  ASSERT_OK(live.status());
  auto batches = ExtractBatches(**archive);
  ASSERT_OK(batches.status());

  RuntimeOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8;
  options.session = session_options;
  StreamRuntime runtime(live->get(), options);
  std::vector<QueryId> ids;
  for (const StableQuery& q : stable) {
    auto id = runtime.Register(q.text);
    ASSERT_TRUE(id.ok()) << id.status().ToString() << " for " << q.text;
    ids.push_back(*id);
  }

  std::vector<TickResult> results;
  results.reserve(kMixedHorizon);
  runtime.SetTickCallback(
      [&](const TickResult& r) { results.push_back(r); });
  runtime.Start();

  // Churn registrations (every class but Unsafe: sampling catch-up over a
  // long prefix is quadratic) while the producer is pushing ticks.
  const std::vector<std::string> churn_pool = {
      "At('tag2', l : Hallway(l))",
      "At(x, l : Room(l))",
      "At(p, l1); At(p, l2); At(q, l3)",
      "At('tag3', l1 : Room(l1)); At('tag3', l2 : NotRoom(l2))",
  };
  std::atomic<bool> done{false};
  std::atomic<size_t> churned{0};
  std::thread churn([&] {
    size_t i = 0;
    while (!done.load()) {
      auto id = runtime.Register(churn_pool[i++ % churn_pool.size()]);
      if (id.ok()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        EXPECT_OK(runtime.Unregister(*id));
        churned.fetch_add(1);
      }
    }
  });

  std::thread producer([&] {
    for (TickBatch& b : *batches) {
      Status s = runtime.ingest().Push(std::move(b), 120000ms);
      EXPECT_OK(s);
    }
  });
  producer.join();
  ASSERT_TRUE(runtime.WaitForTick(kMixedHorizon, 120000ms));
  done.store(true);
  churn.join();
  runtime.Stop();

  ASSERT_EQ(results.size(), kMixedHorizon);
  for (size_t t = 0; t < results.size(); ++t) {
    for (size_t i = 0; i < stable.size(); ++i) {
      const double* p = results[t].Find(ids[i]);
      ASSERT_NE(p, nullptr) << stable[i].text << " at t=" << t + 1;
      if (stable[i].exact) {
        EXPECT_EQ(*p, expected[i][t]) << stable[i].text << " at t=" << t + 1;
      } else {
        EXPECT_GE(*p, 0.0);
        EXPECT_LE(*p, 1.0);
      }
    }
  }

  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.ticks_processed, kMixedHorizon);
  // Every class was served, every stable session stayed healthy.
  for (const StableQuery& q : stable) {
    bool found = false;
    for (const auto& [cls, count] : stats.class_counts) {
      if (cls == q.query_class) {
        EXPECT_GE(count, 1u) << cls;
        found = true;
      }
    }
    EXPECT_TRUE(found) << q.query_class;
  }
  for (const QueryStats& qs : stats.queries) {
    for (size_t i = 0; i < stable.size(); ++i) {
      if (qs.id != ids[i]) continue;
      EXPECT_EQ(qs.query_class, stable[i].query_class) << stable[i].text;
      EXPECT_EQ(qs.exact, stable[i].exact) << stable[i].text;
      EXPECT_EQ(qs.errors, 0u) << stable[i].text << ": " << qs.last_error;
      EXPECT_EQ(qs.ticks, kMixedHorizon) << stable[i].text;
    }
  }
  EXPECT_GT(churned.load(), 0u);
}

// Sharing-group churn races windowed execution: two stable alpha-variant
// queries keep one shared unit materialized for the whole run while a
// churn thread registers and unregisters more members of the same group
// (plus members of an extended-regular group), forcing delegation,
// undelegation, group dissolution, and re-materialization between windows
// — concurrently with ingest and the shard pool reading delegated
// frontiers. Built for the TSan preset; the stable queries must stay
// bit-identical to a sequential unshared replay throughout.
TEST(RuntimeStressTest, SharingGroupChurnStaysBitIdentical) {
  constexpr size_t kShareTags = 3;
  constexpr Timestamp kShareHorizon = 300;
  PipelineConfig config;
  config.num_particles = 32;
  auto scenario =
      RandomWalkScenario(kShareTags, kShareHorizon, /*seed=*/5, config);
  ASSERT_OK(scenario.status());
  auto archive = scenario->BuildDatabase(StreamKind::kFiltered);
  ASSERT_OK(archive.status());

  // Two alpha-variants: their shared unit is live from tick 1.
  const std::vector<std::string> stable = {
      "At('tag1', l : Room(l))",
      "At('tag1', m : Room(m))",
      "At(x, l1 : NotRoom(l1)); At(x, l2 : Room(l2))",
  };
  std::vector<std::vector<double>> expected(stable.size());
  for (size_t i = 0; i < stable.size(); ++i) {
    auto session = StreamingSession::Create(archive->get(), stable[i]);
    ASSERT_OK(session.status());
    for (Timestamp t = 1; t <= kShareHorizon; ++t) {
      auto p = session->Advance();
      ASSERT_OK(p.status());
      expected[i].push_back(*p);
    }
  }

  auto live = CloneDeclarations(**archive);
  ASSERT_OK(live.status());
  auto batches = ExtractBatches(**archive);
  ASSERT_OK(batches.status());

  RuntimeOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8;
  options.max_window_ticks = 16;
  StreamRuntime runtime(live->get(), options);
  std::vector<QueryId> ids;
  for (const std::string& q : stable) {
    auto id = runtime.Register(q);
    ASSERT_OK(id.status());
    ids.push_back(*id);
  }

  std::vector<TickResult> results;
  results.reserve(kShareHorizon);
  runtime.SetTickCallback(
      [&](const TickResult& r) { results.push_back(r); });
  runtime.Start();

  // Churn more members of the stable queries' sharing groups: every
  // registration delegates chains into a live unit, every unregistration
  // detaches (and the extended-regular group repeatedly drops to one
  // reader and dissolves).
  std::atomic<bool> done{false};
  std::atomic<size_t> churned{0};
  std::thread churn([&] {
    size_t i = 0;
    while (!done.load()) {
      const std::string var = "v" + std::to_string(i % 7);
      const std::string text =
          i % 3 == 2 ? "At(" + var + ", l1 : NotRoom(l1)); At(" + var +
                           ", l2 : Room(l2))"
                     : "At('tag1', " + var + " : Room(" + var + "))";
      ++i;
      auto id = runtime.Register(text);
      if (id.ok()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        EXPECT_OK(runtime.Unregister(*id));
        churned.fetch_add(1);
      }
    }
  });

  std::thread producer([&] {
    for (TickBatch& b : *batches) {
      Status s = runtime.ingest().Push(std::move(b), 120000ms);
      EXPECT_OK(s);
    }
  });
  producer.join();
  ASSERT_TRUE(runtime.WaitForTick(kShareHorizon, 120000ms));
  done.store(true);
  churn.join();
  runtime.Stop();

  ASSERT_EQ(results.size(), kShareHorizon);
  for (size_t t = 0; t < results.size(); ++t) {
    for (size_t i = 0; i < stable.size(); ++i) {
      const double* p = results[t].Find(ids[i]);
      ASSERT_NE(p, nullptr) << stable[i] << " at t=" << t + 1;
      EXPECT_EQ(*p, expected[i][t]) << stable[i] << " at t=" << t + 1;
    }
  }
  RuntimeStats stats = runtime.Stats();
  EXPECT_GT(churned.load(), 0u);
  // The stable alpha-variant pair kept one unit materialized for the whole
  // stream: at least one reader's steps were saved every tick.
  EXPECT_GE(stats.shared_steps_saved, static_cast<uint64_t>(kShareHorizon));
  EXPECT_GE(stats.sharing_groups, 1u);
}

// Checkpoints and registry churn race the windowed coordinator: while the
// producer streams ticks through batched windows (and backpressure keeps
// several windows in flight), one thread registers/unregisters queries and
// another snapshots the runtime in a loop. Built for the TSan preset: any
// unsynchronized access between Checkpoint()'s registry walk, the churn
// thread's session creation, and the shard pool's window execution is a
// reported race. Every snapshot must also be internally consistent —
// restoring the last one into a fresh runtime must succeed and land
// exactly on the snapshot's tick.
TEST(RuntimeStressTest, CheckpointAndChurnRaceWindowedExecution) {
  constexpr size_t kChurnTags = 3;
  constexpr Timestamp kChurnHorizon = 160;
  PipelineConfig config;
  config.num_particles = 32;
  auto scenario =
      RandomWalkScenario(kChurnTags, kChurnHorizon, /*seed=*/11, config);
  ASSERT_OK(scenario.status());
  auto archive = scenario->BuildDatabase(StreamKind::kFiltered);
  ASSERT_OK(archive.status());

  LaharOptions session_options;
  session_options.plan.assume_distinct_keys = true;

  auto live = CloneDeclarations(**archive);
  ASSERT_OK(live.status());
  auto batches = ExtractBatches(**archive);
  ASSERT_OK(batches.status());

  RuntimeOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8;
  options.max_window_ticks = 16;
  options.session = session_options;
  StreamRuntime runtime(live->get(), options);
  const std::vector<std::string> stable = {
      "At('tag1', l : Room(l))",
      "At(x, l1 : NotRoom(l1)); At(x, l2 : Room(l2))",
      "At(p, l1); At(p, l2); At(q, l3)",
  };
  for (const std::string& q : stable) {
    ASSERT_OK(runtime.Register(q).status());
  }
  runtime.Start();

  std::atomic<bool> done{false};
  std::atomic<size_t> churned{0};
  std::thread churn([&] {
    const std::vector<std::string> pool = {
        "At('tag2', l : Hallway(l))",
        "At(x, l : Room(l))",
        "At(p, l1); At(p, l2); At(q, l3)",
    };
    size_t i = 0;
    while (!done.load()) {
      auto id = runtime.Register(pool[i++ % pool.size()]);
      if (id.ok()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        EXPECT_OK(runtime.Unregister(*id));
        churned.fetch_add(1);
      }
    }
  });

  std::atomic<size_t> snapshots{0};
  std::string last_snapshot;
  std::thread checkpointer([&] {
    while (!done.load()) {
      auto snap = runtime.Checkpoint();
      EXPECT_OK(snap.status());
      if (snap.ok()) {
        last_snapshot = std::move(*snap);
        snapshots.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::thread producer([&] {
    for (TickBatch& b : *batches) {
      Status s = runtime.ingest().Push(std::move(b), 120000ms);
      EXPECT_OK(s);
    }
  });
  producer.join();
  ASSERT_TRUE(runtime.WaitForTick(kChurnHorizon, 120000ms));
  done.store(true);
  churn.join();
  checkpointer.join();
  runtime.Stop();

  EXPECT_GT(snapshots.load(), 0u);
  EXPECT_GT(churned.load(), 0u);
  EXPECT_EQ(runtime.Stats().ticks_processed, kChurnHorizon);

  // The last mid-run snapshot restores into a fresh declarations clone and
  // lands on a tick the runtime had actually published when it was taken.
  ASSERT_FALSE(last_snapshot.empty());
  auto live2 = CloneDeclarations(**archive);
  ASSERT_OK(live2.status());
  StreamRuntime resumed(live2->get(), options);
  ASSERT_OK(resumed.Restore(last_snapshot));
  EXPECT_LE(resumed.tick(), kChurnHorizon);
  EXPECT_GE(resumed.Stats().num_queries, stable.size());
}

}  // namespace
}  // namespace lahar
