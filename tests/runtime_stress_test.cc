// Concurrency stress for the streaming runtime, built to run under
// ThreadSanitizer (see the tsan-runtime test preset): ~32 mixed
// Regular / Extended Regular standing queries, 1000 simulated timesteps
// produced by sim/trace_generator, pushed from a separate producer thread
// through a deliberately tiny ingest queue so backpressure engages, stepped
// by a 4-thread shard pool — and every published probability asserted
// bit-identical (EXPECT_EQ on doubles) to a sequential StreamingSession
// replay of the same data.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "engine/streaming.h"
#include "runtime/executor.h"
#include "runtime/replay.h"
#include "sim/scenarios.h"
#include "test_util.h"

namespace lahar {
namespace {

using namespace std::chrono_literals;

constexpr size_t kTags = 4;
constexpr Timestamp kHorizon = 1000;

// Grounded (Regular, one chain) and ungrounded (Extended Regular, one chain
// per tag) query templates over the simulated building's relations.
std::vector<std::string> StandingQueries() {
  std::vector<std::string> queries;
  for (size_t i = 1; i <= kTags; ++i) {
    const std::string tag = "'tag" + std::to_string(i) + "'";
    queries.push_back("At(" + tag + ", l : Room(l))");
    queries.push_back("At(" + tag + ", l : Hallway(l))");
    queries.push_back("At(" + tag + ", l1 : NotRoom(l1)); At(" + tag +
                      ", l2 : Room(l2))");
    queries.push_back("At(" + tag + ", l1 : Hallway(l1)); At(" + tag +
                      ", l2 : Hallway(l2)); At(" + tag + ", l3 : Room(l3))");
    queries.push_back("(At(" + tag + ", l1); At(" + tag +
                      ", l2)) WHERE NotRoom(l1) AND Room(l2)");
    queries.push_back("At(" + tag + ", l1 : Room(l1)); At(" + tag +
                      ", l2 : NotRoom(l2)); At(" + tag + ", l3 : Room(l3))");
    queries.push_back("At(" + tag + ", l : NotRoom(l))");
  }
  queries.push_back("At(x, l : Room(l))");
  queries.push_back("At(x, l : Hallway(l))");
  queries.push_back("At(x, l1 : NotRoom(l1)); At(x, l2 : Room(l2))");
  queries.push_back("At(x, l1 : Hallway(l1)); At(x, l2 : Room(l2))");
  return queries;  // 7 * kTags + 4 = 32
}

TEST(RuntimeStressTest, ThousandTicksMatchSequentialReplayBitForBit) {
  PipelineConfig config;
  config.num_particles = 32;  // keep trace generation cheap; any output works
  auto scenario = RandomWalkScenario(kTags, kHorizon, /*seed=*/2008, config);
  ASSERT_OK(scenario.status());
  auto archive = scenario->BuildDatabase(StreamKind::kFiltered);
  ASSERT_OK(archive.status());
  ASSERT_EQ((*archive)->horizon(), kHorizon);

  const std::vector<std::string> queries = StandingQueries();
  ASSERT_EQ(queries.size(), 32u);

  // Sequential ground truth: one StreamingSession per query over the
  // archived data, advanced tick by tick on this thread.
  std::vector<std::vector<double>> expected(queries.size());
  size_t expected_chains = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto session = StreamingSession::Create(archive->get(), queries[i]);
    ASSERT_TRUE(session.ok())
        << session.status().ToString() << " for " << queries[i];
    expected_chains += session->num_chains();
    expected[i].reserve(kHorizon);
    for (Timestamp t = 1; t <= kHorizon; ++t) {
      auto p = session->Advance();
      ASSERT_OK(p.status());
      expected[i].push_back(*p);
    }
  }

  // Live side: replay the archive into a declarations-only clone through
  // the runtime's ingest queue.
  auto live = CloneDeclarations(**archive);
  ASSERT_OK(live.status());
  auto batches = ExtractBatches(**archive);
  ASSERT_OK(batches.status());
  ASSERT_EQ(batches->size(), kHorizon);

  RuntimeOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8;  // far fewer than 1000: producers must block
  StreamRuntime runtime(live->get(), options);
  std::vector<QueryId> ids;
  for (const std::string& q : queries) {
    auto id = runtime.Register(q);
    ASSERT_TRUE(id.ok()) << id.status().ToString() << " for " << q;
    ids.push_back(*id);
  }

  // The callback runs on the coordinator thread; Stop() joins it before
  // this thread reads `results`, so no extra synchronization is needed.
  std::vector<TickResult> results;
  results.reserve(kHorizon);
  runtime.SetTickCallback(
      [&](const TickResult& r) { results.push_back(r); });
  runtime.Start();

  std::thread producer([&] {
    for (TickBatch& b : *batches) {
      Status s = runtime.ingest().Push(std::move(b), 120000ms);
      EXPECT_OK(s);
    }
  });
  producer.join();
  ASSERT_TRUE(runtime.WaitForTick(kHorizon, 120000ms));
  runtime.Stop();

  ASSERT_EQ(results.size(), kHorizon);
  size_t mismatches = 0;
  for (size_t t = 0; t < results.size(); ++t) {
    ASSERT_EQ(results[t].t, t + 1);
    ASSERT_EQ(results[t].probs.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const double* p = results[t].Find(ids[i]);
      ASSERT_NE(p, nullptr);
      if (*p != expected[i][t] && ++mismatches <= 5) {
        ADD_FAILURE() << "mismatch: " << queries[i] << " at t=" << t + 1
                      << ": runtime=" << *p << " sequential=" << expected[i][t];
      }
    }
  }
  EXPECT_EQ(mismatches, 0u);

  RuntimeStats stats = runtime.Stats();
  EXPECT_EQ(stats.ticks_processed, kHorizon);
  EXPECT_EQ(stats.num_queries, queries.size());
  EXPECT_EQ(stats.batches_applied, kHorizon);
  EXPECT_EQ(stats.batches_rejected, 0u);
  EXPECT_EQ(stats.queue_dropped, 0u);  // blocking Push never drops
  // Same chain layout as the sequential sessions (grounded queries run one
  // chain, ungrounded ones a chain per key binding).
  EXPECT_EQ(stats.total_chains, expected_chains);
  EXPECT_GT(stats.total_chains, queries.size());
}

}  // namespace
}  // namespace lahar
