#include <gtest/gtest.h>

#include "engine/lahar.h"
#include "engine/reference.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddRelation;

TEST(LaharTest, RoutesRegularQuery) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}, {{"b", 0.5}}});
  Lahar lahar(&db);
  auto answer = lahar.Run("At('Joe', l1 : l1 = 'a'); At('Joe', l2 : l2 = 'b')");
  ASSERT_OK(answer.status());
  EXPECT_EQ(answer->engine, EngineKind::kRegular);
  EXPECT_EQ(answer->query_class, QueryClass::kRegular);
  EXPECT_TRUE(answer->exact);
  EXPECT_NEAR(answer->probs[2], 0.25, 1e-12);
}

TEST(LaharTest, RoutesExtendedRegularQuery) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}, {{"b", 0.5}}});
  AddIndependentStream(&db, "At", "Sue", {{{"a", 0.5}}, {{"b", 0.5}}});
  Lahar lahar(&db);
  auto answer = lahar.Run("At(x, l1 : l1 = 'a'); At(x, l2 : l2 = 'b')");
  ASSERT_OK(answer.status());
  EXPECT_EQ(answer->engine, EngineKind::kExtendedRegular);
  EXPECT_TRUE(answer->exact);
  EXPECT_NEAR(answer->probs[2], 1 - (1 - 0.25) * (1 - 0.25), 1e-12);
}

TEST(LaharTest, RoutesSafeQuery) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 0.5}}, {}, {}});
  AddIndependentStream(&db, "S", "k1", {{}, {{"v", 0.5}}, {}});
  AddIndependentStream(&db, "T", "a", {{}, {}, {{"w", 0.5}}});
  Lahar lahar(&db);
  auto answer = lahar.Run("R(x, u1); S(x, u2); T('a', y)");
  ASSERT_OK(answer.status());
  EXPECT_EQ(answer->engine, EngineKind::kSafePlan);
  EXPECT_TRUE(answer->exact);
  EXPECT_NEAR(answer->probs[3], 0.5 * 0.5 * 0.5, 1e-12);
}

TEST(LaharTest, UnsafeQuerySamplesByDefault) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"a", 0.5}}});
  AddIndependentStream(&db, "S", "k2", {{{"a", 0.5}}});
  LaharOptions options;
  options.sampling.num_samples = 5000;
  Lahar lahar(&db, options);
  auto answer = lahar.Run("(R(p1, x); S(p2, y)) WHERE x = y");
  ASSERT_OK(answer.status());
  EXPECT_EQ(answer->engine, EngineKind::kSampling);
  EXPECT_FALSE(answer->exact);
}

TEST(LaharTest, UnsafeQueryErrorsWithoutFallback) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"a", 0.5}}});
  AddIndependentStream(&db, "S", "k2", {{{"a", 0.5}}});
  LaharOptions options;
  options.allow_sampling_fallback = false;
  Lahar lahar(&db, options);
  auto answer = lahar.Run("(R(p1, x); S(p2, y)) WHERE x = y");
  EXPECT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kUnsafeQuery);
}

TEST(LaharTest, SafeQueryOutsideAlgebraFallsBackToSampling) {
  // Markovian witness stream: the safe-plan algebra refuses, sampling runs.
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"u", 0.5}}, {}, {}});
  AddIndependentStream(&db, "S", "k1", {{}, {{"v", 0.5}}, {}});
  lahar::testing::AddMarkovStream(&db, "T", "a", {"w"}, 3, 0.9);
  LaharOptions options;
  options.sampling.num_samples = 2000;
  Lahar lahar(&db, options);
  auto answer = lahar.Run("R(x, u1); S(x, u2); T('a', y)");
  ASSERT_OK(answer.status());
  EXPECT_EQ(answer->engine, EngineKind::kSampling);
  EXPECT_FALSE(answer->exact);
}

TEST(LaharTest, ParseAndValidationErrorsSurface) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}});
  Lahar lahar(&db);
  EXPECT_EQ(lahar.Run("At('Joe'").status().code(), StatusCode::kParseError);
  EXPECT_EQ(lahar.Run("Nope(x, y)").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(lahar.Run("At(x)").ok());  // arity mismatch
}

TEST(LaharTest, PrepareExposesClassification) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.5}}});
  Lahar lahar(&db);
  auto prepared = lahar.Prepare("At(x, l)");
  ASSERT_OK(prepared.status());
  EXPECT_EQ(prepared->classification.query_class, QueryClass::kRegular);
  auto answer = lahar.Run(*prepared);
  ASSERT_OK(answer.status());
  EXPECT_NEAR(answer->probs[1], 0.5, 1e-12);
}

TEST(LaharTest, AgreesWithBruteForceAcrossClasses) {
  EventDatabase db;
  AddRelation(&db, "Hall", {{"h"}});
  AddIndependentStream(&db, "At", "Joe",
                       {{{"a", 0.5}, {"h", 0.3}}, {{"h", 0.6}}, {{"c", 0.7}}});
  AddIndependentStream(&db, "At", "Sue",
                       {{{"a", 0.2}}, {{"h", 0.4}, {"c", 0.3}}, {{"c", 0.5}}});
  Lahar lahar(&db);
  const char* queries[] = {
      "At('Joe', l : l = 'c')",
      "At('Joe', l1 : l1 = 'a'); At('Joe', l2)+{ : Hall(l2)}; "
      "At('Joe', l3 : l3 = 'c')",
      "At(x, l1 : l1 = 'a'); At(x, l2 : l2 = 'c')",
  };
  for (const char* text : queries) {
    auto answer = lahar.Run(text);
    ASSERT_OK(answer.status());
    EXPECT_TRUE(answer->exact);
    auto prepared = lahar.Prepare(text);
    ASSERT_OK(prepared.status());
    auto want = BruteForceProbabilities(*prepared->ast, db);
    ASSERT_OK(want.status());
    for (size_t t = 1; t < answer->probs.size(); ++t) {
      EXPECT_NEAR(answer->probs[t], (*want)[t], 1e-9) << text << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace lahar
