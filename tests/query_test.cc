#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "query/printer.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddCertainStream;
using ::lahar::testing::AddRelation;
using ::lahar::testing::DeclareUnarySchema;
using ::lahar::testing::MustParse;

// Declares schemas used across the tests: At(id | value), R/S/T(id | value),
// and Carries(person, object | value).
void DeclareSchemas(EventDatabase* db) {
  for (const char* t : {"At", "R", "S", "T"}) DeclareUnarySchema(db, t);
  EventSchema carries;
  carries.type = db->interner().Intern("Carries");
  carries.attr_names = {db->interner().Intern("person"),
                        db->interner().Intern("object"),
                        db->interner().Intern("value")};
  carries.num_key_attrs = 2;
  ASSERT_OK(db->DeclareSchema(carries));
}

TEST(ParserTest, SimpleSequence) {
  EventDatabase db;
  QueryPtr q = MustParse(&db, "At('Joe','220'); At('Joe', l); At('Joe','220')");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->kind, Query::Kind::kSequence);
  EXPECT_EQ(Goals(*q).size(), 3u);
}

TEST(ParserTest, SubgoalPredicateAndKleene) {
  EventDatabase db;
  QueryPtr q = MustParse(
      &db, "At(p, l1); At(p, l2)+{p : Hall(l2)}; At(p, l3)");
  ASSERT_NE(q, nullptr);
  auto goals = Goals(*q);
  ASSERT_EQ(goals.size(), 3u);
  EXPECT_TRUE(goals[1]->is_kleene);
  ASSERT_EQ(goals[1]->kleene_vars.size(), 1u);
  EXPECT_EQ(goals[1]->kleene_vars[0], db.interner().Intern("p"));
  EXPECT_FALSE(goals[1]->kleene_pred.IsTrue());
}

TEST(ParserTest, WhereSelection) {
  EventDatabase db;
  QueryPtr q = MustParse(&db,
                         "(At(p,l1); At(p,l3)) WHERE Person(p) AND CRoom(l3)");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->kind, Query::Kind::kSelection);
  EXPECT_EQ(q->selection.clauses().size(), 2u);
}

TEST(ParserTest, InnerBasePredicate) {
  EventDatabase db;
  QueryPtr q = MustParse(&db, "R(x : x = 'b' AND x != 'c')");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->kind, Query::Kind::kBase);
  EXPECT_EQ(q->base.pred.clauses().size(), 2u);
}

TEST(ParserTest, ComparisonOperatorsAndInts) {
  EventDatabase db;
  QueryPtr q = MustParse(&db, "R(x : x > 3 AND x <= 10 AND x >= -2 AND x < 99)");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->base.pred.clauses().size(), 4u);
}

TEST(ParserTest, NotRelationAtom) {
  EventDatabase db;
  QueryPtr q = MustParse(&db, "At(p, l : NOT Room(l))");
  ASSERT_NE(q, nullptr);
  const auto& atom = std::get<RelAtom>(q->base.pred.clauses()[0].atoms[0]);
  EXPECT_TRUE(atom.negated);
}

TEST(ParserTest, RejectsRightNestedSequence) {
  EventDatabase db;
  auto q = ParseQuery("R(x); (S(y); T(z))", &db.interner());
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, RejectsGarbage) {
  EventDatabase db;
  EXPECT_FALSE(ParseQuery("R(x", &db.interner()).ok());
  EXPECT_FALSE(ParseQuery("R(x) extra", &db.interner()).ok());
  EXPECT_FALSE(ParseQuery("", &db.interner()).ok());
  EXPECT_FALSE(ParseQuery("R(x); ", &db.interner()).ok());
  EXPECT_FALSE(ParseQuery("R('unterminated)", &db.interner()).ok());
  EXPECT_FALSE(ParseQuery("R(x) WHERE", &db.interner()).ok());
  EXPECT_FALSE(ParseQuery("R(x)+{", &db.interner()).ok());
}

TEST(ParserTest, RoundTripsThroughPrinter) {
  EventDatabase db;
  const char* queries[] = {
      "At('Joe', '220'); At('Joe', l : CRoom(l)); At('Joe', '220')",
      "(At(p, l1); At(p, l2)+{p : Hall(l2)}; At(p, l3) WHERE Person(p))",
      "R(x : x = 'b'); S(y)+{}",
      "(R(x) WHERE Q(x)); S(y)",
  };
  for (const char* text : queries) {
    QueryPtr q1 = MustParse(&db, text);
    ASSERT_NE(q1, nullptr);
    std::string printed = ToString(*q1, db.interner());
    QueryPtr q2 = MustParse(&db, printed);
    ASSERT_NE(q2, nullptr) << printed;
    EXPECT_EQ(printed, ToString(*q2, db.interner())) << printed;
  }
}

TEST(AstTest, FreeVarsOfKleeneAreSharedOnly) {
  EventDatabase db;
  QueryPtr q = MustParse(&db, "At(p, l)+{p : Hallway(l)}");
  auto free = FreeVars(*q);
  EXPECT_EQ(free.size(), 1u);
  EXPECT_TRUE(free.count(db.interner().Intern("p")));
}

TEST(AstTest, SharedVarsAcrossSubgoalsAndKleene) {
  EventDatabase db;
  QueryPtr q = MustParse(&db, "At(p, l1); At(p, l2)+{p}; At(q, l3)");
  auto shared = SharedVars(*q);
  EXPECT_EQ(shared.size(), 1u);
  EXPECT_TRUE(shared.count(db.interner().Intern("p")));
}

TEST(AstTest, SubstituteGroundsVariables) {
  EventDatabase db;
  QueryPtr q = MustParse(&db, "At(p, l1); At(p, l2)");
  Binding b{{db.interner().Intern("p"), db.Sym("Joe")}};
  QueryPtr g = SubstituteQuery(*q, b);
  EXPECT_TRUE(SharedVars(*g).empty());
  EXPECT_EQ(ToString(*g, db.interner()), "At('Joe', l1); At('Joe', l2)");
}

TEST(ValidateTest, ChecksSchemaArity) {
  EventDatabase db;
  DeclareSchemas(&db);
  QueryPtr q = MustParse(&db, "At(p)");
  EXPECT_FALSE(ValidateQuery(*q, db).ok());
  q = MustParse(&db, "Unknown(p, l)");
  EXPECT_FALSE(ValidateQuery(*q, db).ok());
  q = MustParse(&db, "At(p, l)");
  EXPECT_OK(ValidateQuery(*q, db));
}

TEST(ValidateTest, SelectionMustUseFreeVars) {
  EventDatabase db;
  DeclareSchemas(&db);
  // l2 is not exported by the Kleene plus (only p is).
  QueryPtr q = MustParse(&db, "(At(p, l2)+{p}) WHERE Hall(l2)");
  EXPECT_FALSE(ValidateQuery(*q, db).ok());
}

TEST(ValidateTest, KleenePrivateVarsCannotLeak) {
  EventDatabase db;
  DeclareSchemas(&db);
  // l occurs in the Kleene (not exported) and in another subgoal.
  QueryPtr q = MustParse(&db, "At(p, l)+{p}; At(q, l)");
  EXPECT_FALSE(ValidateQuery(*q, db).ok());
}

TEST(NormalizeTest, BasePredicateBecomesMatchPred) {
  EventDatabase db;
  QueryPtr q = MustParse(&db, "R(a); R(y : y = 'b')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  ASSERT_EQ(nq->subgoals.size(), 2u);
  EXPECT_FALSE(nq->subgoals[1].match_pred.IsTrue());
  EXPECT_TRUE(nq->subgoals[1].accept_pred.IsTrue());
}

TEST(NormalizeTest, SelectionBecomesAcceptPred) {
  EventDatabase db;
  QueryPtr q = MustParse(&db, "(R(a); R(y)) WHERE y = 'b'");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  ASSERT_EQ(nq->subgoals.size(), 2u);
  EXPECT_TRUE(nq->subgoals[1].match_pred.IsTrue());
  EXPECT_FALSE(nq->subgoals[1].accept_pred.IsTrue());
}

TEST(NormalizeTest, PushesToShortestCoveringPrefix) {
  EventDatabase db;
  QueryPtr q =
      MustParse(&db, "(At(p, l1); At(p, l2); At(p, l3)) WHERE Office(p, l1)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  // Office(p, l1) is local to subgoal 0.
  EXPECT_FALSE(nq->subgoals[0].accept_pred.IsTrue());
  EXPECT_TRUE(nq->subgoals[1].accept_pred.IsTrue());
  EXPECT_TRUE(nq->subgoals[2].accept_pred.IsTrue());
  EXPECT_TRUE(nq->AllPredicatesLocal());
}

TEST(NormalizeTest, NonLocalPredicateGoesToResidual) {
  EventDatabase db;
  QueryPtr q = MustParse(&db, "(R(x); S(y)) WHERE x = y");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  EXPECT_FALSE(nq->AllPredicatesLocal());
}

TEST(NormalizeTest, KleenePredSplitsMatchAndAccept) {
  EventDatabase db;
  QueryPtr q = MustParse(&db, "R(a); At(p, l : Room(l))+{ : Hall(l)}");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  EXPECT_FALSE(nq->subgoals[1].match_pred.IsTrue());   // Room(l)
  EXPECT_FALSE(nq->subgoals[1].accept_pred.IsTrue());  // Hall(l)
  EXPECT_TRUE(nq->subgoals[1].is_kleene);
}

TEST(ClassifyTest, PaperExamples) {
  EventDatabase db;
  DeclareSchemas(&db);
  struct Case {
    const char* text;
    QueryClass expected;
  };
  const Case cases[] = {
      // Ex. 3.2: regular.
      {"At('Joe','a'); At('Joe', l)+{ : Hallway(l)}; At('Joe','c')",
       QueryClass::kRegular},
      // Ex. 3.6: extended regular (x shared, key position everywhere).
      {"(At(x,'a'); At(x, l2)+{x : Hallway(l2)}; At(x,'c')) WHERE Person(x)",
       QueryClass::kExtendedRegular},
      // Ex. 3.9 (qtalk): safe (y missing from the last subgoal).
      {"(Carries(x, y, z); Carries(x, y, w)+{x, y}; At(x, u)) "
       "WHERE Person(x) AND Laptop(y) AND Office(z) AND LectureRoom(u)",
       QueryClass::kSafe},
      // Fig. 6: R(x); S(x); T('a', y) is safe, not extended regular.
      {"R(x, u1); S(x, u2); T('a', y)", QueryClass::kSafe},
      // Prop. 3.18 h1: non-local predicate -> unsafe.
      {"(R(k1, x); S(k2, y)) WHERE x = y", QueryClass::kUnsafe},
      // Prop. 3.18 h2: shared Kleene variable not in first subgoal.
      {"R(z, w); S(x, u)+{x}", QueryClass::kUnsafe},
      // Prop. 3.19 h3: R(); S(x); T(x).
      {"R(z1, z2); S(x, w1); T(x, w2)", QueryClass::kUnsafe},
      // Prop. 3.19 h4: R(x); S(); T(x).
      {"R(x, w1); S(z1, z2); T(x, w2)", QueryClass::kUnsafe},
  };
  for (const Case& c : cases) {
    QueryPtr q = MustParse(&db, c.text);
    ASSERT_NE(q, nullptr);
    auto nq = Normalize(*q);
    ASSERT_OK(nq.status());
    Classification cls = Classify(*nq, db);
    EXPECT_EQ(cls.query_class, c.expected)
        << c.text << " classified as " << QueryClassName(cls.query_class)
        << " (" << cls.reason << ")";
  }
}

TEST(ClassifyTest, ValueBindingVariableIsNotIndependent) {
  EventDatabase db;
  DeclareSchemas(&db);
  // l is shared but sits in a value position: not extended regular; the
  // smallest prefix containing l is the whole query and l is non-key.
  QueryPtr q = MustParse(&db, "At(p, l); At(q, l)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  EXPECT_EQ(Classify(*nq, db).query_class, QueryClass::kUnsafe);
}

TEST(ClassifyTest, TwoKeySharedVarsAreExtendedRegular) {
  EventDatabase db;
  DeclareSchemas(&db);
  QueryPtr q = MustParse(&db, "Carries(x, y, z1); Carries(x, y, z2)");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  EXPECT_EQ(Classify(*nq, db).query_class, QueryClass::kExtendedRegular);
}

TEST(ClassifyTest, ConditionEvaluation) {
  EventDatabase db;
  AddRelation(&db, "Hall", {{"h1"}, {"h2"}});
  Condition c;
  RelAtom atom;
  atom.rel = db.interner().Intern("Hall");
  atom.args = {Term::Var(db.interner().Intern("l"))};
  c.AddAtom(atom);
  Binding b{{db.interner().Intern("l"), db.Sym("h1")}};
  auto r = c.Eval(b, db);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  b[db.interner().Intern("l")] = db.Sym("office")
      ;
  r = c.Eval(b, db);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  // Unbound variable is an error.
  EXPECT_FALSE(c.Eval(Binding{}, db).ok());
  // Undeclared relation is an error.
  Condition c2;
  RelAtom missing;
  missing.rel = db.interner().Intern("Nope");
  missing.args = {Term::Const(db.Sym("x"))};
  c2.AddAtom(missing);
  EXPECT_FALSE(c2.Eval(Binding{}, db).ok());
}


TEST(ParserTest, DisjunctionParsesIntoClauses) {
  EventDatabase db;
  QueryPtr q = MustParse(
      &db, "At(p, l : Hall(l) OR Lobby(l)) ; At(p, m : m = 'a' OR m = 'b')");
  ASSERT_NE(q, nullptr);
  auto goals = Goals(*q);
  ASSERT_EQ(goals.size(), 2u);
  ASSERT_EQ(goals[0]->pred.clauses().size(), 1u);
  EXPECT_EQ(goals[0]->pred.clauses()[0].atoms.size(), 2u);
  // Mixed AND/OR: CNF with two clauses.
  q = MustParse(&db, "R(x : Hall(x) OR Lobby(x) AND x != 'z')");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->base.pred.clauses().size(), 2u);
  EXPECT_EQ(q->base.pred.clauses()[0].atoms.size(), 2u);
  EXPECT_EQ(q->base.pred.clauses()[1].atoms.size(), 1u);
}

TEST(ParserTest, DisjunctionRoundTripsWithParens) {
  EventDatabase db;
  QueryPtr q1 = MustParse(
      &db, "(R(x); S(y)) WHERE Hall(x) OR Lobby(x) AND y = 'a'");
  std::string printed = ToString(*q1, db.interner());
  EXPECT_NE(printed.find("(Hall(x) OR Lobby(x))"), std::string::npos);
  QueryPtr q2 = MustParse(&db, printed);
  ASSERT_NE(q2, nullptr);
  EXPECT_EQ(printed, ToString(*q2, db.interner()));
}

TEST(ConditionTest, DisjunctionEvaluation) {
  EventDatabase db;
  AddRelation(&db, "Hall", {{"h1"}});
  AddRelation(&db, "Lobby", {{"lb"}});
  QueryPtr q = MustParse(&db, "R(x : Hall(x) OR Lobby(x))");
  const Condition& cond = q->base.pred;
  SymbolId x = db.interner().Intern("x");
  auto eval = [&](const char* v) {
    auto r = cond.Eval(Binding{{x, db.Sym(v)}}, db);
    EXPECT_TRUE(r.ok());
    return r.ok() && *r;
  };
  EXPECT_TRUE(eval("h1"));
  EXPECT_TRUE(eval("lb"));
  EXPECT_FALSE(eval("office"));
}

}  // namespace
}  // namespace lahar
