#include <gtest/gtest.h>

#include "engine/reference.h"
#include "engine/sampling_engine.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;
using ::lahar::testing::MustParse;

TEST(SamplingTest, HoeffdingSampleCounts) {
  // n = ln(2/delta) / (2 eps^2): defaults give ~150.
  EXPECT_EQ(HoeffdingSamples(0.1, 0.1), 150u);
  EXPECT_GT(HoeffdingSamples(0.01, 0.1), 10000u);
  EXPECT_GT(HoeffdingSamples(0.1, 0.01), HoeffdingSamples(0.1, 0.1));
}

TEST(SamplingTest, RegularQueryUsesIncrementalPath) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k", {{{"a", 0.5}}, {{"b", 0.5}}});
  QueryPtr q = MustParse(&db, "R('k', x : x = 'a'); R('k', y : y = 'b')");
  SamplingOptions opt;
  opt.num_samples = 40000;
  auto engine = SamplingEngine::Create(q, db, opt);
  ASSERT_OK(engine.status());
  EXPECT_TRUE(engine->incremental());
  auto probs = engine->Run();
  ASSERT_OK(probs.status());
  auto want = BruteForceProbabilities(*q, db);
  ASSERT_OK(want.status());
  EXPECT_NEAR((*probs)[2], (*want)[2], 0.02);
}

TEST(SamplingTest, MarkovianSamplingMatchesExact) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Joe", {"room", "hall"}, 3, 0.85);
  QueryPtr q =
      MustParse(&db, "At('Joe', l1 : l1 = 'room'); At('Joe', l2 : l2 = 'room')");
  SamplingOptions opt;
  opt.num_samples = 40000;
  auto engine = SamplingEngine::Create(q, db, opt);
  ASSERT_OK(engine.status());
  EXPECT_TRUE(engine->incremental());
  auto probs = engine->Run();
  ASSERT_OK(probs.status());
  EXPECT_NEAR((*probs)[2], 0.5 * 0.85, 0.02);
}

TEST(SamplingTest, ExtendedQueryAcrossPeople) {
  EventDatabase db;
  AddIndependentStream(&db, "At", "Joe", {{{"a", 0.6}}, {{"b", 0.5}}});
  AddIndependentStream(&db, "At", "Sue", {{{"a", 0.4}}, {{"b", 0.7}}});
  QueryPtr q = MustParse(&db, "At(x, l1 : l1 = 'a'); At(x, l2 : l2 = 'b')");
  SamplingOptions opt;
  opt.num_samples = 40000;
  auto engine = SamplingEngine::Create(q, db, opt);
  ASSERT_OK(engine.status());
  EXPECT_TRUE(engine->incremental());
  auto probs = engine->Run();
  ASSERT_OK(probs.status());
  auto want = BruteForceProbabilities(*q, db);
  ASSERT_OK(want.status());
  EXPECT_NEAR((*probs)[2], (*want)[2], 0.02);
}

TEST(SamplingTest, UnsafeQueryFallsBackToGeneralPath) {
  // h1 = sigma_{x=y}(R(x); S(y)) is #P-hard; only sampling evaluates it.
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"a", 0.5}, {"b", 0.3}}, {}});
  AddIndependentStream(&db, "S", "k2", {{}, {{"a", 0.6}, {"b", 0.2}}});
  QueryPtr q = MustParse(&db, "(R(p1, x); S(p2, y)) WHERE x = y");
  SamplingOptions opt;
  opt.num_samples = 20000;
  auto engine = SamplingEngine::Create(q, db, opt);
  ASSERT_OK(engine.status());
  EXPECT_FALSE(engine->incremental());
  auto probs = engine->Run();
  ASSERT_OK(probs.status());
  auto want = BruteForceProbabilities(*q, db);
  ASSERT_OK(want.status());
  for (Timestamp t = 1; t <= 2; ++t) {
    EXPECT_NEAR((*probs)[t], (*want)[t], 0.02) << t;
  }
}

TEST(SamplingTest, DeterministicUnderSeed) {
  EventDatabase db;
  AddIndependentStream(&db, "R", "k", {{{"a", 0.5}}});
  QueryPtr q = MustParse(&db, "R('k', x : x = 'a')");
  SamplingOptions opt;
  opt.num_samples = 100;
  opt.seed = 99;
  auto e1 = SamplingEngine::Create(q, db, opt);
  auto e2 = SamplingEngine::Create(q, db, opt);
  ASSERT_OK(e1.status());
  ASSERT_OK(e2.status());
  auto p1 = e1->Run();
  auto p2 = e2->Run();
  ASSERT_OK(p1.status());
  ASSERT_OK(p2.status());
  EXPECT_EQ((*p1)[1], (*p2)[1]);
}

TEST(SamplingTest, GeneralPathStepsIncrementally) {
  // Queries outside the NFA fragment used to be batch-only; the session
  // layer added per-sample world prefixes, so Step() works here too.
  EventDatabase db;
  AddIndependentStream(&db, "R", "k1", {{{"a", 0.6}}, {{"a", 0.5}}});
  AddIndependentStream(&db, "S", "k2", {{{"a", 0.7}}, {{"a", 0.5}}});
  QueryPtr q = MustParse(&db, "(R(p1, x); S(p2, y)) WHERE x = y");
  SamplingOptions opt;
  opt.num_samples = 20000;
  auto engine = SamplingEngine::Create(q, db, opt);
  ASSERT_OK(engine.status());
  EXPECT_FALSE(engine->incremental());  // no NFA: world-prefix path
  auto want = BruteForceProbabilities(*q, db);
  ASSERT_OK(want.status());
  for (Timestamp t = 1; t <= 2; ++t) {
    auto p = engine->Step();
    ASSERT_OK(p.status());
    EXPECT_EQ(engine->time(), t);
    EXPECT_NEAR(*p, (*want)[t], 0.02) << t;
  }
}

}  // namespace
}  // namespace lahar
