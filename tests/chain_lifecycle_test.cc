// Chain lifecycle (docs/PERF.md "Chain lifecycle"): lazy materialization,
// cold-chain spill, and stripe-aware sharding under the streaming runtime.
//
// The contract under test is bit-identity: every lifecycle configuration
// (lazy stubs, cold spill, both) must produce EXPECT_EQ-equal per-tick
// probabilities, per-chain probabilities, and checkpoint bytes against the
// always-materialized reference — including across a spill -> checkpoint ->
// restore -> rehydrate round trip. The runtime-labeled stress tests at the
// bottom run under the tsan/asan presets and additionally pin down the
// stripe-aware sharding guarantee: executor rebalances and steals never
// shear a lane-interleaved stripe, so stripe counters match a sequential
// replay exactly.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "analysis/prepared.h"
#include "automaton/rows.h"
#include "common/serial.h"
#include "engine/extended_engine.h"
#include "engine/streaming.h"
#include "runtime/executor.h"
#include "runtime/replay.h"
#include "test_util.h"

namespace lahar {
namespace {

using namespace std::chrono_literals;

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;
using ::lahar::testing::MustParse;
using ::lahar::testing::StepDist;

constexpr const char* kQuery = "At(x, l1 : l1 = 'a'); At(x, l2 : l2 = 'b')";

// Adds an independent At-stream for `key` that is loud (mass on the
// symbol-producing values 'a'/'b') exactly where `active` says and all-
// bottom elsewhere. Exact binary fractions keep the inputs bitwise stable.
void AddScheduledStream(EventDatabase* db, const std::string& key,
                        Timestamp horizon,
                        const std::function<bool(Timestamp)>& active) {
  std::vector<StepDist> steps;
  for (Timestamp t = 1; t <= horizon; ++t) {
    steps.push_back(active(t) ? StepDist{{"a", 0.5}, {"b", 0.25}}
                              : StepDist{});
  }
  AddIndependentStream(db, "At", key, steps);
}

Result<ExtendedRegularEngine> MakeEngine(EventDatabase* db,
                                         const ChainOptions& opts) {
  QueryPtr q = MustParse(db, kQuery);
  if (q == nullptr) return Status::Internal("parse failed");
  auto nq = Normalize(*q);
  if (!nq.ok()) return nq.status();
  return ExtendedRegularEngine::Create(*nq, *db, opts);
}

ChainOptions Lifecycle(bool lazy, bool spill, uint32_t cold_after = 4) {
  ChainOptions opts;
  opts.lazy_materialize = lazy;
  opts.spill_cold_chains = spill;
  opts.cold_after_ticks = cold_after;
  return opts;
}

// A database whose keys walk through every lifecycle transition: stubs that
// never materialize, late promotions, cold spills, and rehydrations.
EventDatabase MakeLifecycleDb(Timestamp horizon) {
  EventDatabase db;
  AddScheduledStream(&db, "always", horizon, [](Timestamp) { return true; });
  AddScheduledStream(&db, "early", horizon,
                     [](Timestamp t) { return t <= 6; });
  AddScheduledStream(&db, "late", horizon,
                     [=](Timestamp t) { return t > horizon - 10; });
  AddScheduledStream(&db, "burst", horizon, [](Timestamp t) {
    return t <= 4 || (t > 20 && t <= 24);
  });
  AddScheduledStream(&db, "never", horizon, [](Timestamp) { return false; });
  return db;
}

TEST(ChainLifecycleTest, AllModesBitIdenticalToMaterialized) {
  const Timestamp horizon = 40;
  EventDatabase db = MakeLifecycleDb(horizon);

  auto dense = MakeEngine(&db, ChainOptions{});
  auto lazy = MakeEngine(&db, Lifecycle(/*lazy=*/true, /*spill=*/false));
  auto spill = MakeEngine(&db, Lifecycle(/*lazy=*/false, /*spill=*/true));
  auto both = MakeEngine(&db, Lifecycle(/*lazy=*/true, /*spill=*/true));
  ASSERT_OK(dense.status());
  ASSERT_OK(lazy.status());
  ASSERT_OK(spill.status());
  ASSERT_OK(both.status());
  ASSERT_EQ(dense->num_chains(), 5u);
  EXPECT_FALSE(dense->lifecycle_enabled());
  EXPECT_TRUE(both->lifecycle_enabled());
  // Lazy engines materialize nothing until first evidence.
  EXPECT_EQ(lazy->num_resident(), 0u);
  EXPECT_EQ(both->num_stub(), 5u);

  for (Timestamp t = 1; t <= horizon; ++t) {
    const double pd = dense->Step();
    const double pl = lazy->Step();
    const double ps = spill->Step();
    const double pb = both->Step();
    EXPECT_EQ(pd, pl) << "t=" << t;
    EXPECT_EQ(pd, ps) << "t=" << t;
    EXPECT_EQ(pd, pb) << "t=" << t;
    for (size_t i = 0; i < dense->num_chains(); ++i) {
      EXPECT_EQ(dense->chain_probs()[i], lazy->chain_probs()[i])
          << "t=" << t << " chain=" << i;
      EXPECT_EQ(dense->chain_probs()[i], spill->chain_probs()[i])
          << "t=" << t << " chain=" << i;
      EXPECT_EQ(dense->chain_probs()[i], both->chain_probs()[i])
          << "t=" << t << " chain=" << i;
    }
    // Checkpoint bytes are part of the contract at every tick, from every
    // residency mix the four engines are in right now.
    serial::Writer wd, wl, ws, wb;
    dense->SaveState(&wd);
    lazy->SaveState(&wl);
    spill->SaveState(&ws);
    both->SaveState(&wb);
    EXPECT_EQ(wd.str(), wl.str()) << "t=" << t;
    EXPECT_EQ(wd.str(), ws.str()) << "t=" << t;
    EXPECT_EQ(wd.str(), wb.str()) << "t=" << t;
  }
  ASSERT_OK(dense->ChainStatus());
  ASSERT_OK(both->ChainStatus());

  // The workload drove every transition: promotions ("early"/"late"/
  // "burst"/"always" went loud), spills ("early" and "burst" idled past
  // cold_after), and a rehydration ("burst" reawakened at t=21).
  EXPECT_EQ(lazy->num_stub(), 1u);  // "never" stayed a stub for 40 ticks
  EXPECT_GE(lazy->promotions(), 4u);
  EXPECT_GE(spill->spills(), 2u);
  EXPECT_GE(both->promotions(), 4u);
  EXPECT_GE(both->spills(), 2u);
  EXPECT_GE(both->rehydrations() + both->promotions(), 5u);
  // Non-resident bindings must actually shed their memory.
  EXPECT_LT(both->Footprint().bytes(), dense->Footprint().bytes());
  EXPECT_LT(both->num_resident(), dense->num_chains());
}

TEST(ChainLifecycleTest, SpillCheckpointRestoreRehydrateRoundTrip) {
  const Timestamp horizon = 24;
  EventDatabase db;
  AddScheduledStream(&db, "hot", horizon, [](Timestamp) { return true; });
  AddScheduledStream(&db, "cold", horizon,
                     [](Timestamp t) { return t <= 3; });
  AddScheduledStream(&db, "wake", horizon, [](Timestamp t) {
    return t <= 3 || (t > 19 && t <= 24);
  });
  AddScheduledStream(&db, "ghost", horizon, [](Timestamp) { return false; });

  const ChainOptions opts = Lifecycle(/*lazy=*/true, /*spill=*/true,
                                      /*cold_after=*/3);
  auto live = MakeEngine(&db, opts);
  auto dense = MakeEngine(&db, ChainOptions{});
  ASSERT_OK(live.status());
  ASSERT_OK(dense.status());

  const Timestamp checkpoint_at = 12;
  for (Timestamp t = 1; t <= checkpoint_at; ++t) {
    EXPECT_EQ(dense->Step(), live->Step()) << "t=" << t;
  }
  // "cold" and "wake" idled past cold_after with probability mass split
  // across partial-match states: frozen in the spill arena, not stubs.
  ASSERT_OK(live->ChainStatus());
  EXPECT_GE(live->num_spilled(), 1u);
  EXPECT_GE(live->num_stub(), 1u);  // "ghost" never materialized
  EXPECT_GE(live->spills(), 2u);
  const size_t spilled_at_save = live->num_spilled();
  const size_t stubs_at_save = live->num_stub();
  const size_t resident_at_save = live->num_resident();

  serial::Writer wl, wd;
  live->SaveState(&wl);
  dense->SaveState(&wd);
  EXPECT_EQ(wl.str(), wd.str());  // spilled chains serialize identically

  // Restore into a fresh engine: cold chains must classify straight back
  // into the spill arena without a forced rehydration (docs/RUNTIME.md).
  auto restored = MakeEngine(&db, opts);
  ASSERT_OK(restored.status());
  serial::Reader r(wl.str());
  ASSERT_OK(restored->LoadState(&r));
  EXPECT_EQ(restored->time(), checkpoint_at);
  EXPECT_EQ(restored->num_spilled(), spilled_at_save);
  EXPECT_EQ(restored->num_stub(), stubs_at_save);
  EXPECT_EQ(restored->num_resident(), resident_at_save);
  EXPECT_EQ(restored->rehydrations(), 0u);
  EXPECT_EQ(restored->promotions(), 0u);

  // All three continue bit-identically; "wake" reawakens at t=20 and must
  // rehydrate from the restored spill entries.
  for (Timestamp t = checkpoint_at + 1; t <= horizon; ++t) {
    const double pd = dense->Step();
    const double pl = live->Step();
    const double pr = restored->Step();
    EXPECT_EQ(pd, pl) << "t=" << t;
    EXPECT_EQ(pd, pr) << "t=" << t;
    for (size_t i = 0; i < dense->num_chains(); ++i) {
      EXPECT_EQ(dense->chain_probs()[i], restored->chain_probs()[i])
          << "t=" << t << " chain=" << i;
    }
  }
  ASSERT_OK(restored->ChainStatus());
  EXPECT_GE(restored->rehydrations(), 1u);
  EXPECT_GE(live->rehydrations(), 1u);

  serial::Writer fe, fl, fr;
  dense->SaveState(&fe);
  live->SaveState(&fl);
  restored->SaveState(&fr);
  EXPECT_EQ(fe.str(), fl.str());
  EXPECT_EQ(fe.str(), fr.str());
}

TEST(ChainLifecycleTest, RowPoolEvictionRebuildsDeterministically) {
  // Shared-pool transition rows keep a small residency window per class
  // (automaton/rows.h kMaxResident); an engine stepping behind another
  // engine's clock re-requests evicted timesteps and must rebuild them
  // bit-identically. Lifecycle churn rides along: the independent keys
  // spill and rehydrate while the Markov keys thrash the row window.
  const Timestamp horizon = 20;
  EventDatabase db;
  for (int k = 0; k < 4; ++k) {
    AddMarkovStream(&db, "At", "m" + std::to_string(k), {"a", "b", "c"},
                    horizon, 0.7);
  }
  AddScheduledStream(&db, "i1", horizon, [](Timestamp t) {
    return t <= 3 || (t > 14 && t <= 18);
  });
  AddScheduledStream(&db, "i2", horizon,
                     [](Timestamp t) { return t > 1 && t <= 5; });

  TransitionRowPool pool;
  ChainOptions dense_opts;
  dense_opts.step_mode = KernelStepMode::kSimd;
  dense_opts.row_pool = &pool;
  ChainOptions cycle_opts = Lifecycle(/*lazy=*/true, /*spill=*/true,
                                      /*cold_after=*/3);
  cycle_opts.step_mode = KernelStepMode::kSimd;
  cycle_opts.row_pool = &pool;

  auto dense = MakeEngine(&db, dense_opts);
  ASSERT_OK(dense.status());
  EXPECT_GT(dense->num_simd(), 0u);
  std::vector<double> expect_probs;
  std::vector<std::vector<double>> expect_chains;
  for (Timestamp t = 1; t <= horizon; ++t) {
    expect_probs.push_back(dense->Step());
    expect_chains.push_back(dense->chain_probs());
  }

  // Two lifecycle passes over the same (now fully slid) row window: every
  // row request below the pool's high-water mark is a rebuild.
  for (int pass = 0; pass < 2; ++pass) {
    auto cycle = MakeEngine(&db, cycle_opts);
    ASSERT_OK(cycle.status());
    for (Timestamp t = 1; t <= horizon; ++t) {
      EXPECT_EQ(expect_probs[t - 1], cycle->Step())
          << "pass=" << pass << " t=" << t;
      for (size_t i = 0; i < cycle->num_chains(); ++i) {
        EXPECT_EQ(expect_chains[t - 1][i], cycle->chain_probs()[i])
            << "pass=" << pass << " t=" << t << " chain=" << i;
      }
    }
    ASSERT_OK(cycle->ChainStatus());
    EXPECT_GE(cycle->spills(), 1u) << "pass=" << pass;
    serial::Writer wc, wd;
    cycle->SaveState(&wc);
    dense->SaveState(&wd);
    EXPECT_EQ(wd.str(), wc.str()) << "pass=" << pass;
  }

  // The dense engine's chains hold the same shared row classes the
  // lifecycle passes rebuilt into; the eviction churn must be visible.
  uint64_t rebuilds = 0;
  std::unordered_set<const TransitionRowClass*> seen;
  for (size_t i = 0; i < dense->num_chains(); ++i) {
    const auto& cls = dense->chain(i).row_class();
    if (cls != nullptr && seen.insert(cls.get()).second) {
      rebuilds += cls->rebuilds();
    }
  }
  EXPECT_GT(rebuilds, 0u);
}

TEST(ChainLifecycleTest, Float32TierChainsRehydrateIntoSameTier) {
  // float32 rows are a *tier*, not an accident of construction: a chain
  // built on the f32 tier that spills cold must rehydrate back onto the
  // f32 tier (and stay bit-identical to an always-materialized engine of
  // the same tier — cross-tier comparison is only near-equal, see
  // kernel_equivalence_test).
  const Timestamp horizon = 20;
  EventDatabase db;
  AddScheduledStream(&db, "hot", horizon, [](Timestamp) { return true; });
  AddScheduledStream(&db, "w", horizon, [](Timestamp t) {
    return t <= 4 || (t > 16 && t <= 20);
  });

  TransitionRowPool pool;
  ChainOptions f32_dense;
  f32_dense.step_mode = KernelStepMode::kSimd;
  f32_dense.float32_rows = true;
  f32_dense.row_pool = &pool;
  ChainOptions f32_cycle = Lifecycle(/*lazy=*/true, /*spill=*/true,
                                     /*cold_after=*/3);
  f32_cycle.step_mode = KernelStepMode::kSimd;
  f32_cycle.float32_rows = true;
  f32_cycle.row_pool = &pool;

  auto dense = MakeEngine(&db, f32_dense);
  auto cycle = MakeEngine(&db, f32_cycle);
  ASSERT_OK(dense.status());
  ASSERT_OK(cycle.status());
  EXPECT_EQ(dense->num_simd(), 2u);

  for (Timestamp t = 1; t <= horizon; ++t) {
    EXPECT_EQ(dense->Step(), cycle->Step()) << "t=" << t;
    if (t == 5) {
      // Both keys loud and materialized: "w" was promoted onto the tier
      // its options name.
      ASSERT_EQ(cycle->num_resident(), 2u);
      for (size_t i = 0; i < cycle->num_chains(); ++i) {
        EXPECT_TRUE(cycle->chain(i).simd()) << "chain=" << i;
        EXPECT_TRUE(cycle->chain(i).float32_rows()) << "chain=" << i;
      }
    }
    if (t == 16) {
      // "w" idled past cold_after and left residency.
      EXPECT_EQ(cycle->num_resident(), 1u);
      EXPECT_GE(cycle->spills(), 1u);
    }
  }
  ASSERT_OK(cycle->ChainStatus());
  // "w" reawakened at t=17: back to resident, same tier.
  ASSERT_EQ(cycle->num_resident(), 2u);
  for (size_t i = 0; i < cycle->num_chains(); ++i) {
    EXPECT_TRUE(cycle->chain(i).simd()) << "chain=" << i;
    EXPECT_TRUE(cycle->chain(i).float32_rows()) << "chain=" << i;
  }
  serial::Writer wd, wc;
  dense->SaveState(&wd);
  cycle->SaveState(&wc);
  EXPECT_EQ(wd.str(), wc.str());
}

// --- runtime stress (tsan/asan presets) -----------------------------------

// Drives a striped heavy session through the concurrent executor while
// registration churn forces shard-plan rebuilds and steals, then asserts
// the stripe counters match a sequential replay exactly: shard splits
// aligned on UnitGroupEnd never shear a stripe, so whole-stripe steps and
// data-dependent fallbacks are scheduler-independent.
TEST(ChainLifecycleStressTest, StripedShardsSurviveRebalanceChurn) {
  const Timestamp horizon = 300;
  constexpr size_t kMarkovKeys = 12;
  EventDatabase archive;
  for (size_t k = 0; k < kMarkovKeys; ++k) {
    AddMarkovStream(&archive, "At", "tag" + std::to_string(k),
                    {"a", "b", "c"}, horizon, 0.8);
  }
  const std::string heavy = kQuery;
  std::vector<std::string> light;
  for (size_t k = 0; k < 6; ++k) {
    light.push_back("At('tag" + std::to_string(k) + "', l : l = 'a')");
  }

  ChainOptions chain_opts;
  chain_opts.step_mode = KernelStepMode::kSimd;
  chain_opts.spill_cold_chains = true;  // Markov keys never spill; the
  chain_opts.cold_after_ticks = 8;      // lifecycle-enabled paths still run

  // Sequential ground truth with the same chain options.
  auto prepared = PrepareQuery(heavy, &archive);
  ASSERT_OK(prepared.status());
  auto reference = StreamingSession::Create(&archive, *prepared, chain_opts);
  ASSERT_OK(reference.status());
  std::vector<double> expected;
  for (Timestamp t = 1; t <= horizon; ++t) {
    auto p = reference->Advance();
    ASSERT_OK(p.status());
    expected.push_back(*p);
  }
  ASSERT_GT(reference->engine().num_striped(), 0u);
  const uint64_t seq_stripe_steps = reference->engine().stripe_steps();
  const uint64_t seq_stripe_fallbacks = reference->engine().stripe_fallbacks();
  EXPECT_GT(seq_stripe_steps, 0u);

  auto live = CloneDeclarations(archive);
  ASSERT_OK(live.status());
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());

  RuntimeOptions options;
  options.num_threads = 4;
  options.queue_capacity = 16;
  options.session.chain = chain_opts;
  StreamRuntime runtime(live->get(), options);
  auto heavy_id = runtime.Register(heavy);
  ASSERT_OK(heavy_id.status());
  std::vector<QueryId> light_ids;
  for (const std::string& q : light) {
    auto id = runtime.Register(q);
    ASSERT_OK(id.status());
    light_ids.push_back(*id);
  }

  std::vector<TickResult> results;
  runtime.SetTickCallback([&](const TickResult& r) { results.push_back(r); });
  runtime.Start();
  // Phased ingestion: each churn batch lands while later ticks are still
  // unpushed, so a subsequent window is guaranteed to observe the registry
  // version bump and rebuild the shard plan mid-stream.
  size_t next_batch = 0;
  auto push_until = [&](size_t end) {
    for (; next_batch < end && next_batch < batches->size(); ++next_batch) {
      EXPECT_OK(
          runtime.ingest().Push(std::move((*batches)[next_batch]), 120000ms));
    }
  };
  push_until(60);
  ASSERT_TRUE(runtime.WaitForTick(60, 120000ms));
  for (size_t k = 0; k < 3; ++k) EXPECT_OK(runtime.Unregister(light_ids[k]));
  push_until(140);
  ASSERT_TRUE(runtime.WaitForTick(140, 120000ms));
  for (size_t k = 0; k < 3; ++k) {
    auto id = runtime.Register(light[k]);
    ASSERT_OK(id.status());
  }
  push_until(220);
  ASSERT_TRUE(runtime.WaitForTick(220, 120000ms));
  EXPECT_OK(runtime.Unregister(light_ids[4]));
  push_until(batches->size());
  ASSERT_TRUE(runtime.WaitForTick(horizon, 120000ms));
  RuntimeStats stats = runtime.Stats();
  runtime.Stop();

  ASSERT_EQ(results.size(), horizon);
  size_t mismatches = 0;
  for (size_t t = 0; t < results.size(); ++t) {
    const double* p = results[t].Find(*heavy_id);
    ASSERT_NE(p, nullptr) << "t=" << t + 1;
    if (*p != expected[t] && ++mismatches <= 5) {
      ADD_FAILURE() << "heavy query diverged at t=" << t + 1 << ": runtime="
                    << *p << " sequential=" << expected[t];
    }
  }
  EXPECT_EQ(mismatches, 0u);

  // The churn must actually have rebuilt the shard plan mid-stream: the
  // initial build plus at least one per churn phase. (Steals only count on
  // drift rebalances, whose trigger is a measured 2x load skew — timing-
  // dependent and so unassertable under TSan; plan_rebuilds is not.)
  EXPECT_GE(stats.plan_rebuilds, 4u);
  // ...and the heavy session's stripe counters must not have noticed:
  // identical whole-stripe steps (a sheared stripe would silently demote
  // lanes and lose steps) and identical data-dependent fallbacks.
  const QueryStats* hq = nullptr;
  for (const QueryStats& q : stats.queries) {
    if (q.id == *heavy_id) hq = &q;
  }
  ASSERT_NE(hq, nullptr);
  EXPECT_GT(hq->simd_units, 0u);
  EXPECT_EQ(hq->stripe_steps, seq_stripe_steps);
  EXPECT_EQ(hq->stripe_fallbacks, seq_stripe_fallbacks);
  EXPECT_EQ(stats.stripe_fallbacks, seq_stripe_fallbacks);
}

// Lifecycle transitions under the concurrent executor: dozens of bursty
// keys promote, spill, and rehydrate on shard threads while the published
// probabilities stay bit-identical to a sequential default-options replay.
TEST(ChainLifecycleStressTest, LifecycleChurnStaysBitIdenticalAcrossShards) {
  const Timestamp horizon = 200;
  constexpr size_t kKeys = 48;
  EventDatabase archive;
  for (size_t k = 0; k < kKeys; ++k) {
    const Timestamp start = 1 + static_cast<Timestamp>((k * 7) % 120);
    AddScheduledStream(&archive, "key" + std::to_string(k), horizon,
                       [=](Timestamp t) {
                         // Two active windows with a long cold gap between.
                         return (t >= start && t < start + 6) ||
                                (t >= start + 60 && t < start + 66);
                       });
  }
  std::vector<std::string> queries = {
      kQuery,
      "At('key0', l : l = 'a')",
      "At(x, l1 : l1 = 'b'); At(x, l2 : l2 = 'a')",
  };

  // Sequential ground truth with default (always-materialized) options:
  // bit-identity across configurations is the whole point.
  std::vector<std::vector<double>> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto session = StreamingSession::Create(&archive, queries[i]);
    ASSERT_OK(session.status());
    for (Timestamp t = 1; t <= horizon; ++t) {
      auto p = session->Advance();
      ASSERT_OK(p.status());
      expected[i].push_back(*p);
    }
  }

  auto live = CloneDeclarations(archive);
  ASSERT_OK(live.status());
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());

  RuntimeOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8;
  options.session.chain =
      Lifecycle(/*lazy=*/true, /*spill=*/true, /*cold_after=*/4);
  StreamRuntime runtime(live->get(), options);
  std::vector<QueryId> ids;
  for (const std::string& q : queries) {
    auto id = runtime.Register(q);
    ASSERT_OK(id.status());
    ids.push_back(*id);
  }
  std::vector<TickResult> results;
  runtime.SetTickCallback([&](const TickResult& r) { results.push_back(r); });
  runtime.Start();
  std::thread producer([&] {
    for (TickBatch& b : *batches) {
      EXPECT_OK(runtime.ingest().Push(std::move(b), 120000ms));
    }
  });
  producer.join();
  ASSERT_TRUE(runtime.WaitForTick(horizon, 120000ms));
  RuntimeStats stats = runtime.Stats();
  runtime.Stop();

  ASSERT_EQ(results.size(), horizon);
  size_t mismatches = 0;
  for (size_t t = 0; t < results.size(); ++t) {
    for (size_t i = 0; i < queries.size(); ++i) {
      const double* p = results[t].Find(ids[i]);
      ASSERT_NE(p, nullptr);
      if (*p != expected[i][t] && ++mismatches <= 5) {
        ADD_FAILURE() << queries[i] << " diverged at t=" << t + 1
                      << ": runtime=" << *p
                      << " sequential=" << expected[i][t];
      }
    }
  }
  EXPECT_EQ(mismatches, 0u);

  // The churn actually happened on the shard threads.
  EXPECT_GT(stats.promotions, 0u);
  EXPECT_GT(stats.spills, 0u);
  EXPECT_GT(stats.rehydrations, 0u);
  // Most keys are cold at t=200 (last window ends by t=191): the resident
  // set must have shrunk well below the registered unit count.
  EXPECT_LT(stats.resident_units, stats.total_chains / 2);
  EXPECT_GT(stats.stub_units + stats.spilled_units, 0u);
}

}  // namespace
}  // namespace lahar
