// End-to-end loopback serving: a TCP client registers one standing query
// per class, streams the archive's batches over the wire, and the pushed
// subscription updates must be EXPECT_EQ-identical (bit-exact doubles) to
// an in-process StreamRuntime fed the same batches. Plus: per-tenant
// admission control, backpressure surfacing, slow-consumer disconnects,
// client-triggered checkpoints, and the stats-JSON escaping fix.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "runtime/executor.h"
#include "runtime/replay.h"
#include "runtime/stats.h"
#include "test_util.h"

namespace lahar {
namespace net {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;
using ::lahar::testing::AddRelation;
using ::lahar::testing::StepDist;
using namespace std::chrono_literals;

// One query per class; Unsafe exercises the deterministic sampling
// fallback, so wire results stay bit-reproducible across runs.
const char* const kQueries[] = {
    "At('Joe', l : l = 'a')",                   // Regular
    "At(x, l : l = 'b')",                       // ExtendedRegular
    "At(p, l1); At(p, l2); At(q, l3)",          // Safe (distinct keys)
    "(At(x, u1); Rd(y, u2)) WHERE u1 = u2",     // Unsafe (sampled)
};

// Mixed archive covering every stream flavor the wire format carries:
// independent marginals, a Markovian CPT stream, a second event type for
// the Unsafe join, and a relation.
EventDatabase BuildArchive(Timestamp horizon) {
  EventDatabase db;
  std::vector<StepDist> joe, sue, rd;
  for (Timestamp t = 1; t <= horizon; ++t) {
    joe.push_back({{"a", 0.1 + 0.5 / t}, {"b", 0.2}});
    sue.push_back({{t % 2 == 0 ? "a" : "b", 0.6}});
    rd.push_back({{t % 3 == 0 ? "a" : "c", 0.7}});
  }
  AddIndependentStream(&db, "At", "Joe", joe);
  AddIndependentStream(&db, "At", "Sue", sue);
  AddMarkovStream(&db, "At", "Bob", {"a", "b", "c"}, horizon, 0.8);
  AddIndependentStream(&db, "Rd", "Joe", rd);
  AddRelation(&db, "Room", {{"a"}, {"b"}});
  return db;
}

RuntimeOptions ServingRuntimeOptions() {
  RuntimeOptions options;
  // Safe queries need the distinct-keys assumption to compile to plans,
  // exactly as lahar_cli --serve and lahar_server configure it.
  options.session.plan.assume_distinct_keys = true;
  return options;
}

// Server + runtime over a fresh clone of `archive`'s declarations.
struct ServerUnderTest {
  explicit ServerUnderTest(const EventDatabase& archive,
                           ServerOptions options = {},
                           RuntimeOptions runtime_options =
                               ServingRuntimeOptions()) {
    auto cloned = CloneDeclarations(archive);
    EXPECT_TRUE(cloned.ok()) << cloned.status().ToString();
    live = std::move(*cloned);
    runtime = std::make_unique<StreamRuntime>(live.get(), runtime_options);
    server = std::make_unique<Server>(runtime.get(), options);
    runtime->Start();
    Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  ~ServerUnderTest() {
    server->Stop();
    runtime->ingest().Close();
    runtime->Stop();
  }

  std::unique_ptr<EventDatabase> live;
  std::unique_ptr<StreamRuntime> runtime;
  std::unique_ptr<Server> server;
};

TEST(NetServingTest, LoopbackMatchesInProcessRuntime) {
  const Timestamp horizon = 12;
  EventDatabase archive = BuildArchive(horizon);
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());

  // Reference: the same batches through an in-process runtime.
  auto ref_live = CloneDeclarations(archive);
  ASSERT_OK(ref_live.status());
  StreamRuntime reference(ref_live->get(), ServingRuntimeOptions());
  std::vector<QueryId> ref_ids;
  for (const char* q : kQueries) {
    auto id = reference.Register(q);
    ASSERT_OK(id.status());
    ref_ids.push_back(*id);
  }
  std::vector<TickResult> ref_results;
  reference.SetTickCallback(
      [&](const TickResult& r) { ref_results.push_back(r); });
  reference.Start();
  for (const TickBatch& b : *batches) {
    ASSERT_OK(reference.ingest().Push(b, 10000ms));
  }
  reference.ingest().Close();
  ASSERT_TRUE(reference.WaitForTick(horizon, 30000ms));
  reference.Stop();
  ASSERT_EQ(ref_results.size(), horizon);

  // Same workload over TCP.
  ServerUnderTest sut(archive);
  auto client = Client::Connect("127.0.0.1", sut.server->port());
  ASSERT_OK(client.status());
  std::vector<QueryId> ids;
  for (size_t i = 0; i < 4; ++i) {
    auto reg = (*client)->RegisterQuery(kQueries[i]);
    ASSERT_TRUE(reg.ok()) << reg.status().ToString() << " in: "
                          << kQueries[i];
    EXPECT_EQ(reg->id, ref_ids[i]) << "registration order must match";
    ASSERT_OK((*client)->Subscribe(reg->id));
    ids.push_back(reg->id);
  }
  // The wire announces the same class/engine routing the reference used.
  auto reg_check = (*client)->RegisterQuery(kQueries[0]);
  ASSERT_OK(reg_check.status());
  EXPECT_EQ(reg_check->query_class, "Regular");
  for (const TickBatch& b : *batches) {
    Status s;
    do {
      s = (*client)->Ingest(b);
      // kBackpressure maps to OutOfRange: the queue was momentarily full.
      if (!s.ok() && s.code() == StatusCode::kOutOfRange) {
        std::this_thread::sleep_for(1ms);
      }
    } while (!s.ok() && s.code() == StatusCode::kOutOfRange);
    ASSERT_OK(s);
  }
  std::map<Timestamp, std::map<QueryId, double>> pushed;
  while (pushed.size() < horizon) {
    auto update = (*client)->NextUpdate(30000ms);
    ASSERT_OK(update.status());
    for (const auto& [id, p] : update->probs) pushed[update->t][id] = p;
  }

  // Bit-exact agreement, every tick, every query class.
  for (const TickResult& ref : ref_results) {
    auto it = pushed.find(ref.t);
    ASSERT_NE(it, pushed.end()) << "no push for tick " << ref.t;
    for (QueryId id : ids) {
      const double* expect = ref.Find(id);
      ASSERT_NE(expect, nullptr) << "tick " << ref.t << " q" << id;
      auto pit = it->second.find(id);
      ASSERT_NE(pit, it->second.end()) << "tick " << ref.t << " q" << id;
      EXPECT_EQ(pit->second, *expect) << "tick " << ref.t << " q" << id;
    }
  }
}

TEST(NetServingTest, TenantQuotaRejectsDeterministically) {
  EventDatabase archive = BuildArchive(8);
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  ServerOptions options;
  // 3 tokens, no refill: the 4th ingest must be shed, every time.
  options.tenant_quotas["metered"] = TenantQuota{3.0, 0.0};
  ServerUnderTest sut(archive, options);

  auto metered = Client::Connect("127.0.0.1", sut.server->port(), "metered");
  ASSERT_OK(metered.status());
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK((*metered)->Ingest((*batches)[static_cast<size_t>(i)]));
  }
  Status s = (*metered)->Ingest((*batches)[3]);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  ASSERT_NE(s.GetPayload("wire_error"), nullptr);
  EXPECT_EQ(*s.GetPayload("wire_error"), "quota_exceeded");

  // The default tenant is not affected by the metered tenant's bucket.
  auto open = Client::Connect("127.0.0.1", sut.server->port());
  ASSERT_OK(open.status());
  ASSERT_OK((*open)->Ingest((*batches)[3]));

  NetStats net = sut.server->NetCounters();
  EXPECT_EQ(net.quota_rejected, 1u);
  bool found = false;
  for (const NetTenantStats& t : net.tenants) {
    if (t.tenant != "metered") continue;
    found = true;
    EXPECT_EQ(t.ingest_frames, 3u);
    EXPECT_EQ(t.quota_rejected, 1u);
  }
  EXPECT_TRUE(found) << "per-tenant counters missing";
}

TEST(NetServingTest, BackpressureSurfacesWhenQueueIsFull) {
  EventDatabase archive = BuildArchive(4);
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  auto cloned = CloneDeclarations(archive);
  ASSERT_OK(cloned.status());
  RuntimeOptions runtime_options = ServingRuntimeOptions();
  runtime_options.queue_capacity = 1;
  StreamRuntime runtime(cloned->get(), runtime_options);
  // Deliberately NOT started: nothing drains the queue, so the second
  // ingest deterministically hits a full queue.
  Server server(&runtime, ServerOptions{});
  ASSERT_OK(server.Start());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_OK(client.status());
  ASSERT_OK((*client)->Ingest((*batches)[0]));
  Status s = (*client)->Ingest((*batches)[1]);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  ASSERT_NE(s.GetPayload("wire_error"), nullptr);
  EXPECT_EQ(*s.GetPayload("wire_error"), "backpressure");
  EXPECT_EQ(server.NetCounters().backpressure_rejected, 1u);
  server.Stop();
  runtime.ingest().Close();
}

TEST(NetServingTest, SlowConsumerIsDisconnected) {
  EventDatabase archive = BuildArchive(4);
  ServerOptions options;
  // Big enough for the 7-byte kHelloOk, far too small for a kRegistered
  // reply: the bounded outbound buffer must drop the connection rather
  // than queue past its cap.
  options.outbound_buffer_limit = 16;
  ServerUnderTest sut(archive, options);
  auto client = Client::Connect("127.0.0.1", sut.server->port());
  ASSERT_OK(client.status());
  auto reg = (*client)->RegisterQuery(kQueries[0]);
  EXPECT_FALSE(reg.ok());  // server hung up instead of buffering
  EXPECT_EQ(sut.server->NetCounters().slow_disconnects, 1u);
}

TEST(NetServingTest, SubscribeUnknownQueryIsRejected) {
  EventDatabase archive = BuildArchive(4);
  ServerUnderTest sut(archive);
  auto client = Client::Connect("127.0.0.1", sut.server->port());
  ASSERT_OK(client.status());
  Status s = (*client)->Subscribe(999);
  ASSERT_FALSE(s.ok());
  ASSERT_NE(s.GetPayload("wire_error"), nullptr);
  EXPECT_EQ(*s.GetPayload("wire_error"), "rejected");
  // A real registration then subscribes fine on the same connection.
  auto reg = (*client)->RegisterQuery(kQueries[0]);
  ASSERT_OK(reg.status());
  EXPECT_OK((*client)->Subscribe(reg->id));
}

TEST(NetServingTest, TriggeredCheckpointRoundTrips) {
  const Timestamp horizon = 6;
  EventDatabase archive = BuildArchive(horizon);
  auto batches = ExtractBatches(archive);
  ASSERT_OK(batches.status());
  ServerOptions options;
  options.checkpoint_path =
      ::testing::TempDir() + "/net_serving_checkpoint.bin";
  ServerUnderTest sut(archive, options);
  auto client = Client::Connect("127.0.0.1", sut.server->port());
  ASSERT_OK(client.status());
  auto reg = (*client)->RegisterQuery(kQueries[0]);
  ASSERT_OK(reg.status());
  for (const TickBatch& b : *batches) {
    ASSERT_OK((*client)->Ingest(b));
  }
  ASSERT_TRUE(sut.runtime->WaitForTick(horizon, 30000ms));
  auto ck = (*client)->TriggerCheckpoint();
  ASSERT_OK(ck.status());
  EXPECT_EQ(ck->path, options.checkpoint_path);
  EXPECT_GT(ck->bytes, 0u);

  // The written snapshot restores into a fresh runtime at the same tick
  // with the same standing query.
  std::ifstream in(ck->path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string snapshot((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(snapshot.size(), ck->bytes);
  auto fresh = CloneDeclarations(archive);
  ASSERT_OK(fresh.status());
  StreamRuntime restored(fresh->get(), ServingRuntimeOptions());
  ASSERT_OK(restored.Restore(snapshot));
  EXPECT_EQ(restored.tick(), horizon);
  EXPECT_TRUE(restored.HasQuery(reg->id));
}

TEST(NetServingTest, StatsJsonEscapesQueryText) {
  EventDatabase archive = BuildArchive(4);
  ServerUnderTest sut(archive);
  auto client = Client::Connect("127.0.0.1", sut.server->port());
  ASSERT_OK(client.status());
  // The string literal carries a double quote; unescaped it would break
  // the stats JSON.
  auto reg = (*client)->RegisterQuery("At('say \"hi\"', l : l = 'a')");
  ASSERT_OK(reg.status());
  auto json = (*client)->StatsJson();
  ASSERT_OK(json.status());
  EXPECT_NE(json->find("say \\\"hi\\\""), std::string::npos) << *json;
  EXPECT_EQ(json->find("say \"hi\""), std::string::npos) << *json;
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab\rret"),
            "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(JsonEscape(std::string("nul\x01", 4)), "nul\\u0001");
}

}  // namespace
}  // namespace net
}  // namespace lahar
