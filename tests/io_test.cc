#include <gtest/gtest.h>

#include <sstream>

#include "engine/lahar.h"
#include "model/io.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddIndependentStream;
using ::lahar::testing::AddMarkovStream;
using ::lahar::testing::AddRelation;

std::unique_ptr<EventDatabase> RoundTrip(const EventDatabase& db) {
  std::stringstream ss;
  EXPECT_OK(WriteDatabase(db, &ss));
  auto read = ReadDatabase(&ss);
  EXPECT_TRUE(read.ok()) << read.status().ToString();
  return read.ok() ? std::move(*read) : nullptr;
}

TEST(IoTest, RoundTripsIndependentStreams) {
  EventDatabase db;
  AddRelation(&db, "Hall", {{"h1"}, {"h2"}});
  AddIndependentStream(&db, "At", "Joe",
                       {{{"a", 0.25}, {"b", 0.5}}, {{"a", 1.0}}, {}});
  auto copy = RoundTrip(db);
  ASSERT_NE(copy, nullptr);
  ASSERT_EQ(copy->num_streams(), 1u);
  EXPECT_EQ(copy->horizon(), 3u);
  const Stream& s = copy->stream(0);
  EXPECT_FALSE(s.markovian());
  EXPECT_EQ(s.key()[0], copy->Sym("Joe"));
  EXPECT_NEAR(s.ProbAt(1, s.LookupTuple({copy->Sym("a")})), 0.25, 1e-12);
  EXPECT_NEAR(s.ProbAt(1, kBottom), 0.25, 1e-12);
  EXPECT_NEAR(s.ProbAt(3, kBottom), 1.0, 1e-12);
  const Relation* hall = copy->FindRelation(copy->interner().Intern("Hall"));
  ASSERT_NE(hall, nullptr);
  EXPECT_TRUE(hall->Contains({copy->Sym("h2")}));
}

TEST(IoTest, RoundTripsMarkovianStreams) {
  EventDatabase db;
  AddMarkovStream(&db, "At", "Sue", {"room", "hall"}, 4, 0.85);
  auto copy = RoundTrip(db);
  ASSERT_NE(copy, nullptr);
  const Stream& orig = db.stream(0);
  const Stream& s = copy->stream(0);
  ASSERT_TRUE(s.markovian());
  for (Timestamp t = 1; t <= 4; ++t) {
    for (DomainIndex d = 0; d < s.domain_size(); ++d) {
      EXPECT_NEAR(s.ProbAt(t, d), orig.ProbAt(t, d), 1e-12);
    }
  }
  for (Timestamp t = 1; t < 4; ++t) {
    for (size_t r = 0; r < s.domain_size(); ++r) {
      for (size_t c = 0; c < s.domain_size(); ++c) {
        EXPECT_NEAR(s.CptAt(t).At(r, c), orig.CptAt(t).At(r, c), 1e-12);
      }
    }
  }
}

TEST(IoTest, QueriesGiveSameAnswersAfterRoundTrip) {
  EventDatabase db;
  AddRelation(&db, "Good", {{"a"}});
  AddIndependentStream(&db, "R", "k", {{{"a", 0.4}, {"b", 0.3}}, {{"b", 0.6}}});
  auto copy = RoundTrip(db);
  ASSERT_NE(copy, nullptr);
  const std::string query = "R('k', x : Good(x)); R('k', y : y = 'b')";
  Lahar l1(&db), l2(copy.get());
  auto a1 = l1.Run(query);
  auto a2 = l2.Run(query);
  ASSERT_OK(a1.status());
  ASSERT_OK(a2.status());
  ASSERT_EQ(a1->probs.size(), a2->probs.size());
  for (size_t t = 1; t < a1->probs.size(); ++t) {
    EXPECT_NEAR(a1->probs[t], a2->probs[t], 1e-12);
  }
}

TEST(IoTest, IntegerValuesSurvive) {
  EventDatabase db;
  lahar::testing::DeclareUnarySchema(&db, "Tick");
  Stream s(db.interner().Intern("Tick"), {db.Sym("sym")}, 1, 1, false);
  s.InternTuple({Value::Int(42)});
  ASSERT_OK(s.SetMarginal(1, {0.5, 0.5}));
  ASSERT_TRUE(db.AddStream(std::move(s)).ok());
  auto copy = RoundTrip(db);
  ASSERT_NE(copy, nullptr);
  const Stream& c = copy->stream(0);
  EXPECT_NE(c.LookupTuple({Value::Int(42)}), Stream::kNotFound);
  EXPECT_NEAR(c.ProbAt(1, c.LookupTuple({Value::Int(42)})), 0.5, 1e-12);
}

TEST(IoTest, RejectsMalformedInput) {
  const char* cases[] = {
      "",                                     // no header
      "nonsense 1\n",                         // bad header
      "lahar-db 2\n",                         // bad version
      "lahar-db 1\nbogus directive\n",        // unknown directive
      "lahar-db 1\nkey Joe\n",                // key outside stream
      "lahar-db 1\nrel Hall h1\n",            // rel before relation
      "lahar-db 1\nstream At independent 1\nkey Joe\ndomain a\n"
      "marginal 1 9:1.0\n",                   // index out of range
      "lahar-db 1\nstream At independent 1\nkey Joe\ndomain a\n"
      "marginal 1 1:1.0\n",                   // stream before schema
  };
  for (const char* text : cases) {
    std::stringstream ss(text);
    auto db = ReadDatabase(&ss);
    EXPECT_FALSE(db.ok()) << "should reject: " << text;
  }
}

TEST(IoTest, FileHelpersReportMissingPaths) {
  EXPECT_FALSE(ReadDatabaseFromFile("/no/such/file.db").ok());
  EventDatabase db;
  EXPECT_FALSE(WriteDatabaseToFile(db, "/no/such/dir/out.db").ok());
}

}  // namespace
}  // namespace lahar
