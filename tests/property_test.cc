// Property-based tests: every exact engine must agree with brute-force
// possible-world enumeration on randomized small databases, across seeds,
// stream kinds, and query shapes; the sampling engine must converge to the
// same values. Parameterized gtest sweeps (TEST_P) keep each case small
// enough for exhaustive enumeration while covering the cross product of
// behaviours.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/classify.h"
#include "engine/extended_engine.h"
#include "engine/lahar.h"
#include "engine/reference.h"
#include "engine/safe_engine.h"
#include "test_util.h"

namespace lahar {
namespace {

using ::lahar::testing::AddRelation;
using ::lahar::testing::MustParse;

// Builds a random single-value-attribute stream over `domain` names.
void AddRandomStream(EventDatabase* db, const std::string& type,
                     const std::string& key,
                     const std::vector<std::string>& domain, Timestamp T,
                     bool markovian, Rng* rng) {
  lahar::testing::DeclareUnarySchema(db, type);
  Stream s(db->interner().Intern(type), {db->Sym(key)}, 1, T, markovian);
  for (const auto& d : domain) s.InternTuple({db->Sym(d)});
  size_t D = s.domain_size();
  auto random_dist = [&](bool allow_bottom) {
    std::vector<double> dist(D, 0.0);
    double total = 0;
    for (size_t d = allow_bottom ? 0 : 1; d < D; ++d) {
      dist[d] = rng->Uniform() + 0.05;
      total += dist[d];
    }
    for (double& p : dist) p /= total;
    return dist;
  };
  if (!markovian) {
    for (Timestamp t = 1; t <= T; ++t) {
      ASSERT_OK(s.SetMarginal(t, random_dist(true)));
    }
  } else {
    ASSERT_OK(s.SetInitial(random_dist(true)));
    for (Timestamp t = 1; t < T; ++t) {
      Matrix cpt(D, D, 0.0);
      for (size_t from = 0; from < D; ++from) {
        std::vector<double> row = random_dist(true);
        for (size_t to = 0; to < D; ++to) cpt.At(from, to) = row[to];
      }
      ASSERT_OK(s.SetCpt(t, cpt));
    }
    ASSERT_OK(s.FinalizeMarkov());
  }
  ASSERT_TRUE(db->AddStream(std::move(s)).ok());
}

// ---------------------------------------------------------------------------
// Regular / Extended Regular queries vs brute force across random databases.
// Axes: (seed, markovian, query template index).
// ---------------------------------------------------------------------------

struct RegularCase {
  uint64_t seed;
  bool markovian;
  int query;
};

class RegularPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool, int>> {};

TEST_P(RegularPropertyTest, MatchesBruteForce) {
  auto [seed, markovian, query_index] = GetParam();
  const char* kQueries[] = {
      // Single selection.
      "At(x, l : l = 'a')",
      // Two-step sequence with join on the key.
      "At(x, l1 : l1 = 'a'); At(x, l2 : l2 = 'b')",
      // Sequence with a trailing (blocking) selection.
      "(At(x, l1); At(x, l2)) WHERE l1 = 'a' AND l2 = 'b'",
      // Kleene plus through a relation.
      "At(x, l1 : l1 = 'a'); At(x, l2)+{x : Mid(l2)}; At(x, l3 : l3 = 'c')",
      // Three-step sequence.
      "At(x, l1 : l1 = 'a'); At(x, l2 : l2 = 'b'); At(x, l3 : l3 = 'c')",
  };
  EventDatabase db;
  AddRelation(&db, "Mid", {{"b"}});
  Rng rng(seed);
  const Timestamp T = 3;  // keeps exhaustive enumeration tractable
  AddRandomStream(&db, "At", "Joe", {"a", "b", "c"}, T, markovian, &rng);
  AddRandomStream(&db, "At", "Sue", {"a", "b", "c"}, T, markovian, &rng);

  QueryPtr q = MustParse(&db, kQueries[query_index]);
  ASSERT_NE(q, nullptr);
  ASSERT_OK(ValidateQuery(*q, db));
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  Classification cls = Classify(*nq, db);
  ASSERT_NE(cls.query_class, QueryClass::kUnsafe);

  auto engine = ExtendedRegularEngine::Create(*nq, db);
  ASSERT_OK(engine.status());
  std::vector<double> got = engine->Run();
  auto want = BruteForceProbabilities(*q, db);
  ASSERT_OK(want.status());
  for (Timestamp t = 1; t < got.size(); ++t) {
    ASSERT_NEAR(got[t], (*want)[t], 1e-9)
        << kQueries[query_index] << " seed=" << seed
        << " markov=" << markovian << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegularPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Bool(), ::testing::Range(0, 5)));

// ---------------------------------------------------------------------------
// Safe queries vs brute force. Axes: (seed, query template).
// ---------------------------------------------------------------------------

class SafePropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(SafePropertyTest, MatchesBruteForce) {
  auto [seed, query_index] = GetParam();
  const char* kQueries[] = {
      "R(x, u1); S(x, u2); T('a', y)",
      "R(x, u1 : u1 = 'p'); S(x, u2); T('a', y : y = 'w')",
      "R(x, u1); S(x, u2)",  // degenerates to extended regular via the plan
  };
  EventDatabase db;
  Rng rng(seed);
  const Timestamp T = 3;  // keeps exhaustive enumeration tractable
  AddRandomStream(&db, "R", "k1", {"p"}, T, false, &rng);
  AddRandomStream(&db, "S", "k1", {"p"}, T, false, &rng);
  AddRandomStream(&db, "S", "k2", {"p"}, T, false, &rng);
  AddRandomStream(&db, "T", "a", {"w", "v"}, T, false, &rng);

  QueryPtr q = MustParse(&db, kQueries[query_index]);
  ASSERT_NE(q, nullptr);
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto engine = SafePlanEngine::Create(*nq, db);
  ASSERT_OK(engine.status());
  auto got = engine->Run();
  ASSERT_OK(got.status());
  auto want = BruteForceProbabilities(*q, db);
  ASSERT_OK(want.status());
  for (Timestamp t = 1; t < got->size(); ++t) {
    ASSERT_NEAR((*got)[t], (*want)[t], 1e-9)
        << kQueries[query_index] << " seed=" << seed << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SafePropertyTest,
    ::testing::Combine(::testing::Values(11, 12, 13, 14, 15, 16),
                       ::testing::Range(0, 3)));

// ---------------------------------------------------------------------------
// Probability axioms on random inputs: values in [0,1]; interval
// probabilities are monotone in the interval.
// ---------------------------------------------------------------------------

class AxiomsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AxiomsPropertyTest, ProbabilitiesAreProbabilities) {
  uint64_t seed = GetParam();
  EventDatabase db;
  Rng rng(seed);
  AddRandomStream(&db, "At", "Joe", {"a", "b", "c"}, 6, seed % 2 == 0, &rng);
  Lahar lahar(&db);
  auto answer =
      lahar.Run("At('Joe', l1 : l1 = 'a'); At('Joe', l2 : l2 = 'b')");
  ASSERT_OK(answer.status());
  for (double p : answer->probs) {
    EXPECT_GE(p, -1e-12);
    EXPECT_LE(p, 1 + 1e-12);
  }
}

TEST_P(AxiomsPropertyTest, IntervalProbabilityIsMonotone) {
  uint64_t seed = GetParam();
  EventDatabase db;
  Rng rng(seed);
  AddRandomStream(&db, "At", "Joe", {"a", "b"}, 6, seed % 2 == 0, &rng);
  QueryPtr q = MustParse(&db, "At('Joe', l : l = 'a')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto chain = RegularChain::Create(*nq, db);
  ASSERT_OK(chain.status());
  chain->EnableAcceptTracking();
  double prev = 0;
  for (Timestamp t = 1; t <= 6; ++t) {
    chain->Step();
    double p = chain->AcceptedProb();
    EXPECT_GE(p, prev - 1e-12) << "interval prob must be monotone, t=" << t;
    EXPECT_GE(p, chain->AcceptProb() - 1e-12)
        << "interval prob dominates point prob";
    prev = p;
  }
}

TEST_P(AxiomsPropertyTest, SamplingConvergesToExact) {
  uint64_t seed = GetParam();
  EventDatabase db;
  Rng rng(seed);
  AddRandomStream(&db, "At", "Joe", {"a", "b"}, 4, seed % 2 == 0, &rng);
  QueryPtr q =
      MustParse(&db, "At('Joe', l1 : l1 = 'a'); At('Joe', l2 : l2 = 'b')");
  auto nq = Normalize(*q);
  ASSERT_OK(nq.status());
  auto exact_engine = ExtendedRegularEngine::Create(*nq, db);
  ASSERT_OK(exact_engine.status());
  std::vector<double> exact = exact_engine->Run();
  SamplingOptions options;
  options.num_samples = 30000;
  options.seed = seed * 31 + 7;
  auto sampler = SamplingEngine::Create(q, db, options);
  ASSERT_OK(sampler.status());
  auto approx = sampler->Run();
  ASSERT_OK(approx.status());
  for (Timestamp t = 1; t < exact.size(); ++t) {
    EXPECT_NEAR((*approx)[t], exact[t], 0.02) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AxiomsPropertyTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

// ---------------------------------------------------------------------------
// The deterministic engine on a certain database agrees with the reference
// evaluator (i.e. determinization of certain data is the identity).
// ---------------------------------------------------------------------------

class CertainPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CertainPropertyTest, CertainStreamsGiveZeroOneProbabilities) {
  uint64_t seed = GetParam();
  EventDatabase db;
  Rng rng(seed);
  // Certain stream: one random location per step.
  const std::vector<std::string> domain = {"a", "b", "c"};
  std::vector<lahar::testing::StepDist> steps;
  for (int t = 0; t < 5; ++t) {
    steps.push_back({{domain[rng.Below(3)], 1.0}});
  }
  lahar::testing::AddIndependentStream(&db, "At", "Joe", steps);
  Lahar lahar(&db);
  auto answer =
      lahar.Run("At('Joe', l1 : l1 = 'a'); At('Joe', l2 : l2 = 'b')");
  ASSERT_OK(answer.status());
  for (Timestamp t = 1; t < answer->probs.size(); ++t) {
    double p = answer->probs[t];
    EXPECT_TRUE(std::abs(p) < 1e-9 || std::abs(p - 1) < 1e-9)
        << "certain data must give certain answers, got " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CertainPropertyTest,
                         ::testing::Values(31, 32, 33, 34, 35));

}  // namespace
}  // namespace lahar
